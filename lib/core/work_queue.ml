(* Sharded work-stealing queue: one strategy frontier per domain, each
   behind its own mutex, with steal-half batching between shards.

   The previous design — a single frontier behind a single mutex with a
   [Condition.broadcast] per push — serialised every worker on one lock
   and woke the whole fleet for one item.  Here a worker touches only its
   own shard in steady state; cross-shard traffic happens only when a
   shard runs dry, and then the thief migrates half the victim's items in
   one lock acquisition, so a deep local subtree is split O(log n) times
   rather than leaking one leaf per steal.

   Termination is a single atomic [outstanding] counter: paths queued plus
   paths in flight.  Pushes only ever happen while the pusher is itself in
   flight, so the counter can reach 0 only when the whole scope is
   exhausted — 0 is absorbing, which makes the lock-free check in [take]
   sound.  Lost wakeups are prevented by a version counter: sleepers
   record the version before scanning, and pushers bump it after inserting
   (and before signalling), so a sleeper re-checks whenever an insert
   raced its scan. *)

module Frontier = Search.Frontier

type 'a shard = {
  lock : Mutex.t;
  frontier : 'a Frontier.t; (* guarded by [lock] *)
}

type 'a t = {
  shards : 'a shard array;
  meta_of : 'a -> Frontier.meta;
      (* recomputes scheduling metadata when a stolen item is re-pushed
         into the thief's shard *)
  outstanding : int Atomic.t; (* queued + in-flight paths; 0 = terminated *)
  qlen : int Atomic.t;        (* queued items, all shards *)
  stop_requested : bool Atomic.t;
  version : int Atomic.t;     (* bumped after every insert *)
  sleep : Mutex.t;
  wakeup : Condition.t;
  mutable sleepers : int;     (* guarded by [sleep] *)
  drop_lock : Mutex.t;
  mutable dropped : 'a list;  (* evicted by bounded strategies; see [drain_dropped] *)
  pushed_n : int Atomic.t;
  evicted_n : int Atomic.t;
  steal_batches : int Atomic.t;
  stolen_items : int Atomic.t;
  max_len : int Atomic.t;
}

let create ?(shards = 1) ?(initial_paths = 0) ~meta_of make_frontier =
  if shards < 1 then invalid_arg "Work_queue.create: need at least one shard";
  { shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); frontier = make_frontier () });
    meta_of;
    outstanding = Atomic.make initial_paths;
    qlen = Atomic.make 0;
    stop_requested = Atomic.make false;
    version = Atomic.make 0;
    sleep = Mutex.create ();
    wakeup = Condition.create ();
    sleepers = 0;
    drop_lock = Mutex.create ();
    dropped = [];
    pushed_n = Atomic.make 0;
    evicted_n = Atomic.make 0;
    steal_batches = Atomic.make 0;
    stolen_items = Atomic.make 0;
    max_len = Atomic.make 0 }

let shard_count t = Array.length t.shards

let sample_len t =
  let len = Atomic.get t.qlen in
  let rec bump () =
    let cur = Atomic.get t.max_len in
    if len > cur && not (Atomic.compare_and_set t.max_len cur len) then bump ()
  in
  bump ();
  if Obs.Trace.enabled () then Obs.Trace.counter Obs.Names.queue_len len

(* Wake at most [n] sleepers — one per item made available, never the
   whole fleet. *)
let signal_waiters t n =
  if n > 0 then begin
    Mutex.lock t.sleep;
    let k = min n t.sleepers in
    for _ = 1 to k do
      Condition.signal t.wakeup
    done;
    Mutex.unlock t.sleep
  end

(* Items a bounded strategy evicted leave the termination accounting here;
   they surface through [drain_dropped] so the scheduler can release their
   snapshots.  No wakeup bookkeeping: eviction only removes work, and the
   pusher/thief responsible is itself still in flight, so [outstanding]
   cannot reach 0 in this call. *)
let record_dropped t = function
  | [] -> ()
  | items ->
    let n = List.length items in
    ignore (Atomic.fetch_and_add t.evicted_n n);
    ignore (Atomic.fetch_and_add t.outstanding (-n));
    ignore (Atomic.fetch_and_add t.qlen (-n));
    Mutex.lock t.drop_lock;
    t.dropped <- List.rev_append items t.dropped;
    Mutex.unlock t.drop_lock

let drain_dropped t =
  if t.dropped == [] then [] (* racy peek: a miss is re-checked next drain *)
  else begin
    Mutex.lock t.drop_lock;
    let d = t.dropped in
    t.dropped <- [];
    Mutex.unlock t.drop_lock;
    d
  end

let push_batch t ~dom batch =
  let n = List.length batch in
  if n > 0 then begin
    let sh = t.shards.(dom) in
    ignore (Atomic.fetch_and_add t.pushed_n n);
    ignore (Atomic.fetch_and_add t.outstanding n);
    ignore (Atomic.fetch_and_add t.qlen n);
    Mutex.lock sh.lock;
    sh.frontier.Frontier.push_batch batch;
    let ev = sh.frontier.Frontier.evicted () in
    Mutex.unlock sh.lock;
    record_dropped t ev;
    Atomic.incr t.version;
    sample_len t;
    signal_waiters t (n - List.length ev)
  end

let pop_local t dom =
  let sh = t.shards.(dom) in
  Mutex.lock sh.lock;
  let item = sh.frontier.Frontier.pop () in
  Mutex.unlock sh.lock;
  item

(* Pop up to [k] items from a locked frontier, preserving pop order. *)
let rec pop_up_to frontier k acc =
  if k = 0 then List.rev acc
  else
    match frontier.Frontier.pop () with
    | None -> List.rev acc
    | Some x -> pop_up_to frontier (k - 1) (x :: acc)

(* Steal half the victim's items (all of them when it holds just one): the
   first is consumed by the thief, the rest migrate into the thief's own
   shard.  Locks are never held pairwise, so steals cannot deadlock. *)
let try_steal t ~dom =
  let n = Array.length t.shards in
  let rec attempt i =
    if i >= n then None
    else begin
      let v = (dom + i) mod n in
      let sh = t.shards.(v) in
      Mutex.lock sh.lock;
      let len = sh.frontier.Frontier.length () in
      let k = if len <= 1 then len else len / 2 in
      let batch = pop_up_to sh.frontier k [] in
      Mutex.unlock sh.lock;
      match batch with
      | [] -> attempt (i + 1)
      | first :: rest ->
        Atomic.incr t.steal_batches;
        ignore (Atomic.fetch_and_add t.stolen_items k);
        if rest <> [] then begin
          let own = t.shards.(dom) in
          Mutex.lock own.lock;
          own.frontier.Frontier.push_batch
            (List.map (fun x -> (t.meta_of x, x)) rest);
          let ev = own.frontier.Frontier.evicted () in
          Mutex.unlock own.lock;
          record_dropped t ev;
          Atomic.incr t.version;
          (* the migrated items are claimable by other sleepers *)
          signal_waiters t (List.length rest - List.length ev)
        end;
        Some first
    end
  in
  attempt 1

let rec take t ~dom =
  if Atomic.get t.stop_requested then None
  else begin
    let v0 = Atomic.get t.version in
    let got item =
      sample_len t;
      ignore (Atomic.fetch_and_add t.qlen (-1));
      Some item
    in
    match pop_local t dom with
    | Some item -> got item
    | None ->
      (match try_steal t ~dom with
      | Some item -> got item
      | None ->
        if Atomic.get t.outstanding = 0 then begin
          (* Global termination: nothing queued anywhere and nobody who
             could still push.  Wake every other waiter so they see it. *)
          Mutex.lock t.sleep;
          Condition.broadcast t.wakeup;
          Mutex.unlock t.sleep;
          None
        end
        else begin
          Mutex.lock t.sleep;
          (* Sleep only if nothing was inserted since we started scanning
             — otherwise the insert may have raced our scan. *)
          if
            Atomic.get t.version = v0
            && Atomic.get t.outstanding > 0
            && not (Atomic.get t.stop_requested)
          then begin
            t.sleepers <- t.sleepers + 1;
            Condition.wait t.wakeup t.sleep;
            t.sleepers <- t.sleepers - 1
          end;
          Mutex.unlock t.sleep;
          take t ~dom
        end)
  end

let finish_path t =
  let before = Atomic.fetch_and_add t.outstanding (-1) in
  if before <= 1 then begin
    Mutex.lock t.sleep;
    Condition.broadcast t.wakeup;
    Mutex.unlock t.sleep
  end

let stop t =
  Atomic.set t.stop_requested true;
  Mutex.lock t.sleep;
  Condition.broadcast t.wakeup;
  Mutex.unlock t.sleep

let stopped t = Atomic.get t.stop_requested
let length t = Atomic.get t.qlen

let shard_length t dom =
  let sh = t.shards.(dom) in
  Mutex.lock sh.lock;
  let len = sh.frontier.Frontier.length () in
  Mutex.unlock sh.lock;
  len

let pushed t = Atomic.get t.pushed_n
let evicted t = Atomic.get t.evicted_n
let steal_batches t = Atomic.get t.steal_batches
let stolen_items t = Atomic.get t.stolen_items
let max_length t = Atomic.get t.max_len
