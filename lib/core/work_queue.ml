module Frontier = Search.Frontier

type 'a t = {
  mutex : Mutex.t;
  wakeup : Condition.t;
  frontier : 'a Frontier.t;          (* guarded by [mutex] *)
  mutable in_flight : int;
  mutable stop_requested : bool;
  mutable pushed : int;
  mutable evicted : int;
  mutable max_length : int;
}

let create ?(initial_paths = 0) frontier =
  { mutex = Mutex.create ();
    wakeup = Condition.create ();
    frontier;
    in_flight = initial_paths;
    stop_requested = false;
    pushed = 0;
    evicted = 0;
    max_length = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_batch t batch =
  locked t (fun () ->
      t.frontier.Frontier.push_batch batch;
      t.pushed <- t.pushed + List.length batch;
      t.evicted <- t.evicted + List.length (t.frontier.Frontier.evicted ());
      let len = t.frontier.Frontier.length () in
      if Obs.Trace.enabled () then Obs.Trace.counter Obs.Names.queue_len len;
      t.max_length <- max t.max_length len;
      Condition.broadcast t.wakeup)

let take t =
  locked t (fun () ->
      let rec wait () =
        if t.stop_requested then None
        else
          match t.frontier.Frontier.pop () with
          | Some _ as item ->
            t.in_flight <- t.in_flight + 1;
            item
          | None ->
            if t.in_flight = 0 then begin
              (* Global termination: nothing queued and nobody who could
                 still push.  Wake every other waiter so they see it too. *)
              Condition.broadcast t.wakeup;
              None
            end
            else begin
              Condition.wait t.wakeup t.mutex;
              wait ()
            end
      in
      wait ())

let finish_path t =
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.wakeup)

let stop t =
  locked t (fun () ->
      t.stop_requested <- true;
      Condition.broadcast t.wakeup)

let stopped t = locked t (fun () -> t.stop_requested)
let length t = locked t (fun () -> t.frontier.Frontier.length ())
let pushed t = locked t (fun () -> t.pushed)
let evicted t = locked t (fun () -> t.evicted)
let max_length t = locked t (fun () -> t.max_length)
