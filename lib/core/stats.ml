type t = {
  mutable guesses : int;
  mutable extensions_pushed : int;
  mutable extensions_evaluated : int;
  mutable fails : int;
  mutable exits : int;
  mutable kills : int;
  mutable snapshots_created : int;
  mutable restores : int;
  mutable adopting_restores : int;
  mutable evicted : int;
  mutable max_frontier : int;
  mutable max_live_snapshots : int;
  mutable instructions : int;
  mutable requeues : int;
  mutable quarantined : int;
  mutable steals : int;
  mutable payload_evictions : int;
  mutable demotions : int;
  mutable promotions : int;
  mutable spills : int;
  mutable spill_loads : int;
  mutable replays : int;
  mutable replay_fallbacks : int;
  mutable replayed_instructions : int;
  mem : Mem.Mem_metrics.t;
}

let create () =
  { guesses = 0; extensions_pushed = 0; extensions_evaluated = 0; fails = 0;
    exits = 0; kills = 0; snapshots_created = 0; restores = 0;
    adopting_restores = 0; evicted = 0;
    max_frontier = 0; max_live_snapshots = 0; instructions = 0;
    requeues = 0; quarantined = 0; steals = 0; payload_evictions = 0;
    demotions = 0; promotions = 0; spills = 0; spill_loads = 0; replays = 0;
    replay_fallbacks = 0; replayed_instructions = 0;
    mem = Mem.Mem_metrics.create () }

(* Fold [x] into [acc]: event counters add; extent peaks were observed
   against the same shared frontier, so they combine by max. *)
let merge acc x =
  acc.guesses <- acc.guesses + x.guesses;
  acc.extensions_pushed <- acc.extensions_pushed + x.extensions_pushed;
  acc.extensions_evaluated <- acc.extensions_evaluated + x.extensions_evaluated;
  acc.fails <- acc.fails + x.fails;
  acc.exits <- acc.exits + x.exits;
  acc.kills <- acc.kills + x.kills;
  acc.snapshots_created <- acc.snapshots_created + x.snapshots_created;
  acc.restores <- acc.restores + x.restores;
  acc.adopting_restores <- acc.adopting_restores + x.adopting_restores;
  acc.evicted <- acc.evicted + x.evicted;
  acc.max_frontier <- max acc.max_frontier x.max_frontier;
  acc.max_live_snapshots <- max acc.max_live_snapshots x.max_live_snapshots;
  acc.instructions <- acc.instructions + x.instructions;
  acc.requeues <- acc.requeues + x.requeues;
  acc.quarantined <- acc.quarantined + x.quarantined;
  acc.steals <- acc.steals + x.steals;
  acc.payload_evictions <- acc.payload_evictions + x.payload_evictions;
  acc.demotions <- acc.demotions + x.demotions;
  acc.promotions <- acc.promotions + x.promotions;
  acc.spills <- acc.spills + x.spills;
  acc.spill_loads <- acc.spill_loads + x.spill_loads;
  acc.replays <- acc.replays + x.replays;
  acc.replay_fallbacks <- acc.replay_fallbacks + x.replay_fallbacks;
  acc.replayed_instructions <- acc.replayed_instructions + x.replayed_instructions;
  Mem.Mem_metrics.add acc.mem x.mem

(* Publish into an Obs.Metrics registry: the canonical machine-readable
   form (BENCH_E*.json, trace tooling).  Counter fields map to counters,
   the two extent peaks to gauges combined by max — so publishing several
   per-worker records into one registry agrees with [merge]ing them first
   and publishing once. *)
let publish t (reg : Obs.Metrics.t) =
  let c name v = Obs.Metrics.incr reg ~by:v name in
  c "explorer.guesses" t.guesses;
  c "explorer.extensions_pushed" t.extensions_pushed;
  c "explorer.extensions_evaluated" t.extensions_evaluated;
  c "explorer.fails" t.fails;
  c "explorer.exits" t.exits;
  c "explorer.kills" t.kills;
  c "explorer.snapshots_created" t.snapshots_created;
  c "explorer.restores" t.restores;
  c "explorer.adopting_restores" t.adopting_restores;
  c "explorer.evicted" t.evicted;
  Obs.Metrics.gauge_max reg "explorer.max_frontier" t.max_frontier;
  Obs.Metrics.gauge_max reg "explorer.max_live_snapshots" t.max_live_snapshots;
  c "explorer.instructions" t.instructions;
  c "explorer.requeues" t.requeues;
  c "explorer.quarantined" t.quarantined;
  c "explorer.steals" t.steals;
  c "explorer.payload_evictions" t.payload_evictions;
  c "explorer.demotions" t.demotions;
  c "explorer.promotions" t.promotions;
  c "explorer.spills" t.spills;
  c "explorer.spill_loads" t.spill_loads;
  c "explorer.replays" t.replays;
  c "explorer.replay_fallbacks" t.replay_fallbacks;
  c "explorer.replayed_instructions" t.replayed_instructions;
  let m = t.mem in
  c "mem.cow_faults" m.Mem.Mem_metrics.cow_faults;
  c "mem.zero_fills" m.Mem.Mem_metrics.zero_fills;
  c "mem.pages_copied" m.Mem.Mem_metrics.pages_copied;
  c "mem.bytes_copied" m.Mem.Mem_metrics.bytes_copied;
  c "mem.frames_allocated" m.Mem.Mem_metrics.frames_allocated;
  c "mem.snapshots" m.Mem.Mem_metrics.snapshots;
  c "mem.restores" m.Mem.Mem_metrics.restores;
  c "mem.tlb_hits" m.Mem.Mem_metrics.tlb_hits;
  c "mem.tlb_misses" m.Mem.Mem_metrics.tlb_misses;
  c "mem.tlb_flushes" m.Mem.Mem_metrics.tlb_flushes;
  c "mem.tlb_shootdowns" m.Mem.Mem_metrics.tlb_shootdowns;
  c "mem.pt_walks" m.Mem.Mem_metrics.pt_walks;
  c "mem.pt_node_copies" m.Mem.Mem_metrics.pt_node_copies;
  c "mem.frames_freed" m.Mem.Mem_metrics.frames_freed;
  c "mem.frames_recycled" m.Mem.Mem_metrics.frames_recycled;
  c "mem.zero_fills_elided" m.Mem.Mem_metrics.zero_fills_elided

let pp fmt t =
  Format.fprintf fmt
    "@[<v>guesses=%d pushed=%d evaluated=%d fails=%d exits=%d kills=%d@ \
     snapshots=%d restores=%d adopting=%d evicted=%d max_frontier=%d \
     max_live=%d@ instructions=%d@ requeues=%d quarantined=%d steals=%d \
     payload_evictions=%d demotions=%d promotions=%d spills=%d \
     spill_loads=%d replays=%d replay_fallbacks=%d \
     replayed_instructions=%d@ %a@]"
    t.guesses t.extensions_pushed t.extensions_evaluated t.fails t.exits
    t.kills t.snapshots_created t.restores t.adopting_restores t.evicted
    t.max_frontier t.max_live_snapshots t.instructions t.requeues
    t.quarantined t.steals t.payload_evictions t.demotions t.promotions
    t.spills t.spill_loads t.replays t.replay_fallbacks
    t.replayed_instructions
    Mem.Mem_metrics.pp t.mem
