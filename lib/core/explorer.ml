module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module Frontier = Search.Frontier
module Probe = Record.Probe

type strategy =
  [ `Dfs
  | `Bfs
  | `Astar
  | `Sma of int
  | `Wastar of float
  | `Beam of int
  | `Dfs_bounded of int
  | `Random of int
  | `Custom of (unit -> Ext.t Frontier.t) ]

type terminal_kind =
  | Exit of int
  | Fail
  | Path_killed of string

type terminal = {
  kind : terminal_kind;
  output : string;
  depth : int;
}

type outcome =
  | Completed of int
  | Stopped_first_exit of int
  | Aborted of string

type result = {
  outcome : outcome;
  transcript : string;
  terminals : terminal list;
  stats : Stats.t;
}

type mode = [ `Run_to_completion | `First_exit ]

type scope = { root : Snapshot.t; root_handle : Reclaim.handle option;
               frontier : Ext.t Frontier.t }

let make_frontier : strategy -> Ext.t Frontier.t = function
  | `Dfs -> Frontier.dfs ()
  | `Bfs -> Frontier.bfs ()
  | `Astar -> Frontier.astar ()
  | `Sma capacity -> Frontier.sma ~capacity ()
  | `Wastar weight -> Frontier.wastar ~weight ()
  | `Beam width -> Frontier.beam ~width ()
  | `Dfs_bounded max_depth -> Frontier.dfs_bounded ~max_depth ()
  | `Random seed -> Frontier.random ~seed ()
  | `Custom make -> make ()

let strategy_of_id id : strategy option =
  if id = Os.Sys_abi.strategy_dfs then Some `Dfs
  else if id = Os.Sys_abi.strategy_bfs then Some `Bfs
  else if id = Os.Sys_abi.strategy_astar then Some `Astar
  else if id = Os.Sys_abi.strategy_sma then Some (`Sma 64)
  else if id = Os.Sys_abi.strategy_random then Some (`Random 42)
  else None

let reason_to_string r = Format.asprintf "%a" Libos.pp_reason r

let run ?(mode = `Run_to_completion) ?(fuel_per_step = 50_000_000)
    ?(max_extensions = max_int) ?(retry_budget = 3) ?strategy_override
    ?tier_stress ?spill_threshold ?on_stop ?probe (machine : Libos.t) =
  let stats = Stats.create () in
  let mem_before = Mem.Mem_metrics.copy (Mem.Addr_space.metrics machine.aspace) in
  let retired_before = machine.cpu.Cpu.retired in
  let transcript = Buffer.create 256 in
  let terminals = ref [] in
  let scope : scope option ref = ref None in
  let marker = ref (Libos.stdout_chunks machine) in
  let pending_hint = ref 0 in
  let current_depth = ref 0 in
  let current_snap : Snapshot.t option ref = ref None in

  (* Memory-pressure integration: a bounded physical memory gets a tiered
     payload store, so snapshots can be demoted to compressed deltas when
     frames run out and promoted back (or, past a truncation, rebuilt by
     replay) when their extension is finally scheduled.  [tier_stress]
     forces the store on and exercises the tiers on an unbounded memory —
     the fuzz oracle's hammer. *)
  let phys = Mem.Addr_space.phys machine.aspace in
  let store =
    if Mem.Phys_mem.capacity phys > 0 || tier_stress <> None then begin
      let st = Reclaim.create ~fuel_per_step ?spill_threshold machine in
      Mem.Phys_mem.set_pressure_handler phys (Some (Reclaim.pressure_handler st));
      Some st
    end
    else None
  in
  (* Recording assumes snapshot ids in the log resolve to states the
     replayer has itself captured; a reclaim store rebuilds evicted
     payloads by replay under *fresh* ids the log has never seen. *)
  if probe <> None && store <> None then
    invalid_arg "Explorer: recording requires an unbounded in-memory store";
  (* Tier-stress hook: every [n]-th scheduler stop demotes every live
     payload (and compresses/spills immediately — stops are quiet points),
     and every 5[n]-th additionally truncates everything non-pinned so the
     replay fallback is exercised too.  Pure store operations: the running
     machine is never touched. *)
  let stress_clock = ref 0 in
  let stress_tick () =
    match (tier_stress, store) with
    | Some n, Some st when n > 0 ->
      incr stress_clock;
      if !stress_clock mod n = 0 then begin
        ignore (Reclaim.demote_all st);
        Reclaim.flush_pending st;
        if !stress_clock mod (5 * n) = 0 then ignore (Reclaim.evict_all st)
      end
    | _ -> ()
  in
  (* Eager snapshot release runs only in the plain in-memory scheduler:
     reclaim mode manages payload lifetime itself (see [Reclaim]), and a
     non-recycling physical memory makes the whole discipline a no-op. *)
  let recycle_snaps = store = None && Mem.Phys_mem.recycling phys in
  (* The address-space epoch recorded right after the most recent restore
     (or root capture): if it is still current when the path ends, nothing
     captured the map in between and the segment's COW tail is private —
     the precondition of [Addr_space.discard_segment]. *)
  let segment_epoch = ref (-1) in
  (* In reclaim mode, replays capture through the store's id allocator;
     sharing it keeps snapshot ids unique across originals and rebuilds. *)
  let ids =
    match store with
    | Some st -> Reclaim.snapshot_ids st
    | None -> Snapshot.ids ()
  in
  (* The origin of the path being evaluated: the popped extension (or the
     root path), plus the retry count supervision has spent on it. *)
  let current_origin : Ext.t option ref = ref None in
  let current_handle : Reclaim.handle option ref = ref None in
  let current_choice = ref 1 in
  let retries = ref 0 in

  (* Move stdout chunks produced since the last scheduling point into the
     global transcript; returns them as this path's attributed output. *)
  let harvest () =
    let cur = Libos.stdout_chunks machine in
    let rec collect acc l =
      if l == !marker then acc
      else
        match l with
        | [] -> acc
        | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    marker := cur;
    let text = String.concat "" chunks in
    Buffer.add_string transcript text;
    text
  in

  let record kind output =
    terminals := { kind; output; depth = !current_depth } :: !terminals
  in

  let finish outcome =
    if Obs.Trace.enabled () then begin
      (match Libos.icache_counts machine with
      | Some (misses, slow) ->
        Obs.Trace.counter Obs.Names.icache_misses misses;
        Obs.Trace.counter Obs.Names.icache_slow slow
      | None -> ());
      (match Libos.block_counts machine with
      | Some (fuses, hits, splits) ->
        Obs.Trace.counter Obs.Names.block_fuse fuses;
        Obs.Trace.counter Obs.Names.block_hit hits;
        Obs.Trace.counter Obs.Names.block_split splits
      | None -> ());
      Obs.Trace.counter Obs.Names.instructions
        (machine.cpu.Cpu.retired - retired_before)
    end;
    stats.instructions <- machine.cpu.Cpu.retired - retired_before;
    let mem_delta =
      Mem.Mem_metrics.diff (Mem.Addr_space.metrics machine.aspace) mem_before
    in
    let mem_delta =
      (* Replays re-execute work the original run already performed and
         accounted; reporting it again would make eviction look like extra
         guest progress. *)
      match store with
      | None -> mem_delta
      | Some st ->
        stats.instructions <-
          stats.instructions - Reclaim.replayed_instructions st;
        stats.payload_evictions <- Reclaim.evictions st;
        stats.demotions <- Reclaim.demotions st;
        stats.promotions <- Reclaim.promotions st;
        stats.spills <- Reclaim.spills st;
        stats.spill_loads <- Reclaim.spill_loads st;
        stats.replays <- Reclaim.replays st;
        stats.replay_fallbacks <- Reclaim.replay_fallbacks st;
        stats.replayed_instructions <- Reclaim.replayed_instructions st;
        Mem.Mem_metrics.diff mem_delta (Reclaim.suppressed_mem st)
    in
    Mem.Mem_metrics.add stats.mem mem_delta;
    { outcome;
      transcript = Buffer.contents transcript;
      terminals = List.rev !terminals;
      stats }
  in

  let resolve (ext : Ext.t) =
    match ext.payload with
    | Ext.Snap s -> s
    | Ext.Ref h -> (
      match store with
      | Some st -> Reclaim.get st h
      | None -> invalid_arg "Explorer: managed extension without a store")
  in

  (* Schedule the next extension; [`Continue] means the machine is ready to
     resume, [`Scope_done] that the scope was exhausted and the root
     restored (rax is 0 there, captured before it was set to 1). *)
  let rec schedule sc =
    let dropped = sc.frontier.Frontier.evicted () in
    stats.evicted <- stats.evicted + List.length dropped;
    (* An evicted extension will never be evaluated: give its ref back.
       Safe even before restoring away — any snapshot on the running
       path's lineage is pinned by a live child or the unreleased ref of
       the path itself, so [try_free] cannot touch it. *)
    if recycle_snaps then
      List.iter
        (fun (e : Ext.t) ->
          match e.Ext.payload with
          | Ext.Snap s -> Snapshot.release_ext ~phys s
          | Ext.Ref _ -> ())
        dropped;
    let prev = !current_snap in
    (* Free the finished segment's COW tail while the map still holds it,
       then drop the finished path's ref on its origin, then restore.  The
       discard must come first (it diffs against the live map); the origin
       release must come before the next pop's [sole_extension] check, or
       the previous sibling's still-held running ref (and its chain of
       live descendants) would mask every last-extension restore and the
       adopting fast path could never trigger.  Releasing before the
       restore is sound: the freed deltas are unreachable from every live
       snapshot, and nothing reads through the dangling map between the
       release and the restore that replaces it. *)
    let discard_prev () =
      (* Runs in reclaim mode too (the store's explicit-free discipline
         covers captured records but not the unfrozen tail of a finished
         segment); only a non-recycling allocator makes it a no-op. *)
      if Mem.Phys_mem.recycling phys then
        match prev with
        | Some p when Mem.Addr_space.epoch machine.aspace = !segment_epoch ->
          ignore
            (Mem.Addr_space.discard_segment machine.aspace
               ~base:p.Snapshot.mem)
        | _ -> ()
    in
    let release_prev () =
      if recycle_snaps then
        match prev with
        | Some p -> Snapshot.release_ext ~phys p
        | None -> ()
    in
    match sc.frontier.Frontier.pop () with
    | Some (ext : Ext.t) -> (
      (* Discard before resolving: a reconstruction (promotion or replay)
         clobbers the machine and bumps the epoch, which would leak the
         finished segment's COW tail to the GC.  Sound because every
         resolve path that touches the machine starts with a full restore
         and nothing reads through the outgoing map in between. *)
      discard_prev ();
      match resolve ext with
      | snap ->
        release_prev ();
        if recycle_snaps && Snapshot.sole_extension snap then begin
          (* Last restore of this snapshot: adopt its frames into the new
             generation instead of COWing them all over again — the DFS
             tail-child fast path.  [snap == prev] (the machine is parked
             on the snapshot being re-popped, as between failing leaf
             siblings) is fine: the popped extension's own ref kept
             [try_free] away, and after this restore the snapshot is
             never restored again. *)
          Snapshot.restore_adopting machine snap;
          stats.adopting_restores <- stats.adopting_restores + 1
        end
        else Snapshot.restore machine snap;
        segment_epoch := Mem.Addr_space.epoch machine.aspace;
        marker := Libos.stdout_chunks machine;
        Cpu.set machine.cpu Reg.rax ext.index;
        (match probe with
        | None -> ()
        | Some p -> p.Probe.resume ~snap:snap.Snapshot.id ~rax:ext.index);
        current_depth := ext.meta.Frontier.depth;
        current_snap := Some snap;
        current_origin := Some ext;
        current_handle :=
          (match ext.payload with Ext.Ref h -> Some h | Ext.Snap _ -> None);
        current_choice := ext.index;
        retries := 0;
        stats.extensions_evaluated <- stats.extensions_evaluated + 1;
        stats.restores <- stats.restores + 1
      | exception e ->
        (* Reconstruction failed (e.g. genuinely out of frames): this path
           dies; the search itself survives. *)
        current_depth := ext.meta.Frontier.depth;
        stats.kills <- stats.kills + 1;
        record
          (Path_killed
             (Printf.sprintf "reconstruction failed: %s" (Printexc.to_string e)))
          "";
        schedule sc)
    | None ->
      discard_prev ();
      release_prev ();
      Snapshot.restore machine sc.root;
      (* the root was captured with rax already 0, the value the resumed
         program observes — no register override to record *)
      (match probe with
      | None -> ()
      | Some p -> p.Probe.resume ~snap:sc.root.Snapshot.id ~rax:(-1));
      segment_epoch := Mem.Addr_space.epoch machine.aspace;
      marker := Libos.stdout_chunks machine;
      current_depth := 0;
      current_snap := None;
      current_origin := None;
      retries := 0;
      stats.restores <- stats.restores + 1;
      scope := None
  in

  let track_extents sc =
    let frontier_len = sc.frontier.Frontier.length () in
    if Obs.Trace.enabled () then
      Obs.Trace.counter Obs.Names.frontier_len frontier_len;
    stats.max_frontier <- max stats.max_frontier frontier_len;
    let lineage_len =
      match store with
      | Some _ ->
        (* managed captures carry no parent link (eviction must be able to
           free ancestors), so count the path itself *)
        !current_depth + 1
      | None -> (
        match !current_snap with
        | None -> 0
        | Some s -> List.length (Snapshot.lineage s))
    in
    stats.max_live_snapshots <- max stats.max_live_snapshots (frontier_len + lineage_len)
  in

  let rec loop () =
    let eval_retired0 = machine.cpu.Cpu.retired in
    let step =
      if Obs.Trace.enabled () then begin
        let sid =
          match !current_snap with Some s -> s.Snapshot.id | None -> -1
        in
        let r0 = machine.cpu.Cpu.retired in
        Obs.Trace.span_begin ~a:sid Obs.Names.explorer_eval;
        let res =
          try `Stop (Libos.run machine ~fuel:fuel_per_step) with e -> `Crash e
        in
        Obs.Trace.span_end ~a:sid
          ~b:(machine.cpu.Cpu.retired - r0)
          Obs.Names.explorer_eval;
        (match res with
        | `Stop stop -> Obs.Trace.instant (Libos.stop_trace_name stop)
        | `Crash _ -> ());
        res
      end
      else try `Stop (Libos.run machine ~fuel:fuel_per_step) with e -> `Crash e
    in
    (match probe with
    | None -> ()
    | Some p -> (
      let retired = machine.cpu.Cpu.retired - eval_retired0 in
      match step with
      | `Stop stop -> p.Probe.eval ~retired stop
      | `Crash e -> p.Probe.crash ~retired (Printexc.to_string e)));
    match step with
    | `Crash e -> crashed e
    | `Stop stop ->
    (match on_stop with None -> () | Some f -> f machine stop);
    stress_tick ();
    match stop with
    | Libos.Guess_strategy { strategy } -> (
      match !scope with
      | Some _ -> finish (Aborted "nested sys_guess_strategy")
      | None -> (
        let chosen =
          match strategy_override with
          | Some s -> Some s
          | None -> strategy_of_id strategy
        in
        match chosen with
        | None -> finish (Aborted (Printf.sprintf "unknown strategy id %d" strategy))
        | Some strat ->
          ignore (harvest ());
          (* The root must observe 0 when restored after exhaustion, and 1
             on the exploring path right now. *)
          Cpu.set machine.cpu Reg.rax 0;
          (match probe with None -> () | Some p -> p.Probe.set_rax 0);
          let root = Snapshot.capture ~ids ~depth:0 machine in
          (match probe with
          | None -> ()
          | Some p -> p.Probe.capture ~snap:root.Snapshot.id);
          (* one ref for the scope-opening path itself, so the uniform
             release-on-reschedule in [schedule] balances *)
          if recycle_snaps then Snapshot.retain root;
          segment_epoch := Mem.Addr_space.epoch machine.aspace;
          stats.snapshots_created <- stats.snapshots_created + 1;
          let root_handle = Option.map (fun st -> Reclaim.add_root st root) store in
          scope := Some { root; root_handle; frontier = make_frontier strat };
          current_snap := Some root;
          current_depth := 0;
          current_origin := None;
          current_handle := root_handle;
          current_choice := 1;
          retries := 0;
          Cpu.set machine.cpu Reg.rax 1;
          (match probe with None -> () | Some p -> p.Probe.set_rax 1);
          loop ()))
    | Libos.Guess { n } -> (
      match !scope with
      | None -> finish (Aborted "sys_guess outside a strategy scope")
      | Some sc ->
        ignore (harvest ());
        if n <= 0 then begin
          stats.fails <- stats.fails + 1;
          record Fail "";
          schedule sc;
          loop ()
        end
        else begin
          (* Thread lineage in reclaim mode too: the store's explicit-free
             discipline ([Reclaim]) rides on the record parent chain. *)
          let snap =
            Snapshot.capture ~ids ?parent:!current_snap
              ~depth:!current_depth machine
          in
          (match probe with
          | None -> ()
          | Some p -> p.Probe.capture ~snap:snap.Snapshot.id);
          stats.guesses <- stats.guesses + 1;
          stats.snapshots_created <- stats.snapshots_created + 1;
          let payload =
            match store with
            | None -> Ext.Snap snap
            | Some st ->
              let parent =
                match !current_handle with
                | Some h -> h
                | None -> invalid_arg "Explorer: scope path without a handle"
              in
              Ext.Ref
                (Reclaim.add st ~parent ~choice:!current_choice
                   ~depth:!current_depth snap)
          in
          let meta = { Frontier.depth = !current_depth + 1; hint = !pending_hint } in
          pending_hint := 0;
          let batch =
            List.init n (fun index -> meta, { Ext.payload; index; meta })
          in
          sc.frontier.Frontier.push_batch batch;
          if recycle_snaps then Snapshot.retain ~n snap;
          stats.extensions_pushed <- stats.extensions_pushed + n;
          track_extents sc;
          if stats.extensions_pushed > max_extensions then
            finish (Aborted "extension budget exhausted")
          else begin
            schedule sc;
            loop ()
          end
        end)
    | Libos.Guess_fail -> (
      match !scope with
      | None -> finish (Aborted "sys_guess_fail outside a strategy scope")
      | Some sc ->
        let output = harvest () in
        stats.fails <- stats.fails + 1;
        record Fail output;
        schedule sc;
        loop ())
    | Libos.Guess_hint { dist } ->
      pending_hint := dist;
      Cpu.set machine.cpu Reg.rax 0;
      (match probe with None -> () | Some p -> p.Probe.set_rax 0);
      loop ()
    | Libos.Exited { status } -> (
      let output = harvest () in
      match !scope with
      | None -> finish (Completed status)
      | Some sc -> (
        stats.exits <- stats.exits + 1;
        record (Exit status) output;
        match mode with
        | `First_exit -> finish (Stopped_first_exit status)
        | `Run_to_completion ->
          schedule sc;
          loop ()))
    | Libos.Killed reason -> (
      let output = harvest () in
      match !scope with
      | None -> finish (Aborted (reason_to_string reason))
      | Some sc ->
        stats.kills <- stats.kills + 1;
        record (Path_killed (reason_to_string reason)) output;
        schedule sc;
        loop ())

  (* Supervision: an exception escaping guest evaluation (an injected
     worker crash, a genuine out-of-frames) kills the attempt, not the
     run.  The path's origin is re-scheduled under a bounded retry budget;
     a path that keeps crashing is quarantined as [Path_killed]. *)
  and crashed e =
    match !scope with
    | None ->
      finish
        (Aborted
           (Printf.sprintf "crash outside a strategy scope: %s"
              (Printexc.to_string e)))
    | Some sc ->
      let origin_adopted =
        recycle_snaps
        && (match !current_snap with
           | Some s -> Snapshot.adopted s
           | None -> false)
      in
      if origin_adopted then
        (* The origin was restored adopting: its frames have changed in
           place under the crashed attempt, so it cannot be restored
           again.  Straight to quarantine, no retries. *)
        quarantine sc e
      else if !retries < retry_budget - 1 then begin
        incr retries;
        stats.requeues <- stats.requeues + 1;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~a:!retries Obs.Names.sched_requeue;
        (* the crashed attempt's COW tail dies here; free it before the
           re-restore if no capture froze it *)
        if Mem.Phys_mem.recycling phys then
          (match !current_snap with
          | Some p when Mem.Addr_space.epoch machine.aspace = !segment_epoch
            ->
            ignore
              (Mem.Addr_space.discard_segment machine.aspace
                 ~base:p.Snapshot.mem)
          | _ -> ());
        match
          (try
             `Ok
               (match !current_origin with
               | Some ext ->
                 let snap = resolve ext in
                 Snapshot.restore machine snap;
                 marker := Libos.stdout_chunks machine;
                 Cpu.set machine.cpu Reg.rax ext.index;
                 (match probe with
                 | None -> ()
                 | Some p ->
                   p.Probe.resume ~snap:snap.Snapshot.id ~rax:ext.index)
               | None ->
                 (* the scope-opening path restarts from the root with the
                    exploring value of rax *)
                 Snapshot.restore machine sc.root;
                 marker := Libos.stdout_chunks machine;
                 Cpu.set machine.cpu Reg.rax 1;
                 (match probe with
                 | None -> ()
                 | Some p -> p.Probe.resume ~snap:sc.root.Snapshot.id ~rax:1))
           with e' -> `Err e')
        with
        | `Ok () ->
          segment_epoch := Mem.Addr_space.epoch machine.aspace;
          loop ()
        | `Err e' -> quarantine sc e'
      end
      else quarantine sc e

  and quarantine sc e =
    if Obs.Trace.enabled () then Obs.Trace.instant Obs.Names.sched_quarantine;
    stats.quarantined <- stats.quarantined + 1;
    stats.kills <- stats.kills + 1;
    record
      (Path_killed
         (Printf.sprintf "crash: %s (quarantined after %d attempts)"
            (Printexc.to_string e) retry_budget))
      "";
    schedule sc;
    loop ()
  in
  loop ()

let run_image ?mode ?fuel_per_step ?max_extensions ?retry_budget ?capacity
    ?recycle ?poison ?strategy_override ?tier_stress ?spill_threshold
    ?(files = []) ?stdin image =
  let phys = Mem.Phys_mem.create ?capacity ?recycle ?poison () in
  let machine = Libos.boot phys image in
  List.iter (fun (path, content) -> Libos.add_file machine ~path content) files;
  Option.iter (Libos.set_stdin machine) stdin;
  run ?mode ?fuel_per_step ?max_extensions ?retry_budget ?strategy_override
    ?tier_stress ?spill_threshold machine
