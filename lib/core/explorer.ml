module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module Frontier = Search.Frontier

type strategy =
  [ `Dfs
  | `Bfs
  | `Astar
  | `Sma of int
  | `Wastar of float
  | `Beam of int
  | `Dfs_bounded of int
  | `Random of int
  | `Custom of (unit -> Ext.t Frontier.t) ]

type terminal_kind =
  | Exit of int
  | Fail
  | Path_killed of string

type terminal = {
  kind : terminal_kind;
  output : string;
  depth : int;
}

type outcome =
  | Completed of int
  | Stopped_first_exit of int
  | Aborted of string

type result = {
  outcome : outcome;
  transcript : string;
  terminals : terminal list;
  stats : Stats.t;
}

type mode = [ `Run_to_completion | `First_exit ]

type scope = { root : Snapshot.t; frontier : Ext.t Frontier.t }

let make_frontier : strategy -> Ext.t Frontier.t = function
  | `Dfs -> Frontier.dfs ()
  | `Bfs -> Frontier.bfs ()
  | `Astar -> Frontier.astar ()
  | `Sma capacity -> Frontier.sma ~capacity ()
  | `Wastar weight -> Frontier.wastar ~weight ()
  | `Beam width -> Frontier.beam ~width ()
  | `Dfs_bounded max_depth -> Frontier.dfs_bounded ~max_depth ()
  | `Random seed -> Frontier.random ~seed ()
  | `Custom make -> make ()

let strategy_of_id id : strategy option =
  if id = Os.Sys_abi.strategy_dfs then Some `Dfs
  else if id = Os.Sys_abi.strategy_bfs then Some `Bfs
  else if id = Os.Sys_abi.strategy_astar then Some `Astar
  else if id = Os.Sys_abi.strategy_sma then Some (`Sma 64)
  else if id = Os.Sys_abi.strategy_random then Some (`Random 42)
  else None

let reason_to_string r = Format.asprintf "%a" Libos.pp_reason r

let run ?(mode = `Run_to_completion) ?(fuel_per_step = 50_000_000)
    ?(max_extensions = max_int) ?strategy_override ?on_stop (machine : Libos.t) =
  let stats = Stats.create () in
  let ids = Snapshot.ids () in
  let mem_before = Mem.Mem_metrics.copy (Mem.Addr_space.metrics machine.aspace) in
  let retired_before = machine.cpu.Cpu.retired in
  let transcript = Buffer.create 256 in
  let terminals = ref [] in
  let scope : scope option ref = ref None in
  let marker = ref (Libos.stdout_chunks machine) in
  let pending_hint = ref 0 in
  let current_depth = ref 0 in
  let current_snap : Snapshot.t option ref = ref None in

  (* Move stdout chunks produced since the last scheduling point into the
     global transcript; returns them as this path's attributed output. *)
  let harvest () =
    let cur = Libos.stdout_chunks machine in
    let rec collect acc l =
      if l == !marker then acc
      else
        match l with
        | [] -> acc
        | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    marker := cur;
    let text = String.concat "" chunks in
    Buffer.add_string transcript text;
    text
  in

  let record kind output =
    terminals := { kind; output; depth = !current_depth } :: !terminals
  in

  let finish outcome =
    stats.instructions <- machine.cpu.Cpu.retired - retired_before;
    Mem.Mem_metrics.add stats.mem
      (Mem.Mem_metrics.diff (Mem.Addr_space.metrics machine.aspace) mem_before);
    { outcome;
      transcript = Buffer.contents transcript;
      terminals = List.rev !terminals;
      stats }
  in

  (* Schedule the next extension; [`Continue] means the machine is ready to
     resume, [`Scope_done] that the scope was exhausted and the root
     restored (rax is 0 there, captured before it was set to 1). *)
  let schedule sc =
    stats.evicted <- stats.evicted + List.length (sc.frontier.Frontier.evicted ());
    match sc.frontier.Frontier.pop () with
    | Some (ext : Ext.t) ->
      Snapshot.restore machine ext.snap;
      marker := Libos.stdout_chunks machine;
      Cpu.set machine.cpu Reg.rax ext.index;
      current_depth := ext.meta.Frontier.depth;
      current_snap := Some ext.snap;
      stats.extensions_evaluated <- stats.extensions_evaluated + 1;
      stats.restores <- stats.restores + 1
    | None ->
      Snapshot.restore machine sc.root;
      marker := Libos.stdout_chunks machine;
      current_depth := 0;
      current_snap := None;
      stats.restores <- stats.restores + 1;
      scope := None
  in

  let track_extents sc =
    let frontier_len = sc.frontier.Frontier.length () in
    stats.max_frontier <- max stats.max_frontier frontier_len;
    let lineage_len =
      match !current_snap with None -> 0 | Some s -> List.length (Snapshot.lineage s)
    in
    stats.max_live_snapshots <- max stats.max_live_snapshots (frontier_len + lineage_len)
  in

  let rec loop () =
    let stop = Libos.run machine ~fuel:fuel_per_step in
    (match on_stop with None -> () | Some f -> f machine stop);
    match stop with
    | Libos.Guess_strategy { strategy } -> (
      match !scope with
      | Some _ -> finish (Aborted "nested sys_guess_strategy")
      | None -> (
        let chosen =
          match strategy_override with
          | Some s -> Some s
          | None -> strategy_of_id strategy
        in
        match chosen with
        | None -> finish (Aborted (Printf.sprintf "unknown strategy id %d" strategy))
        | Some strat ->
          ignore (harvest ());
          (* The root must observe 0 when restored after exhaustion, and 1
             on the exploring path right now. *)
          Cpu.set machine.cpu Reg.rax 0;
          let root = Snapshot.capture ~ids ~depth:0 machine in
          stats.snapshots_created <- stats.snapshots_created + 1;
          scope := Some { root; frontier = make_frontier strat };
          current_snap := Some root;
          current_depth := 0;
          Cpu.set machine.cpu Reg.rax 1;
          loop ()))
    | Libos.Guess { n } -> (
      match !scope with
      | None -> finish (Aborted "sys_guess outside a strategy scope")
      | Some sc ->
        ignore (harvest ());
        if n <= 0 then begin
          stats.fails <- stats.fails + 1;
          record Fail "";
          schedule sc;
          loop ()
        end
        else begin
          let snap =
            Snapshot.capture ~ids ?parent:!current_snap ~depth:!current_depth machine
          in
          stats.guesses <- stats.guesses + 1;
          stats.snapshots_created <- stats.snapshots_created + 1;
          let meta = { Frontier.depth = !current_depth + 1; hint = !pending_hint } in
          pending_hint := 0;
          let batch =
            List.init n (fun index -> meta, { Ext.snap; index; meta })
          in
          sc.frontier.Frontier.push_batch batch;
          stats.extensions_pushed <- stats.extensions_pushed + n;
          track_extents sc;
          if stats.extensions_pushed > max_extensions then
            finish (Aborted "extension budget exhausted")
          else begin
            schedule sc;
            loop ()
          end
        end)
    | Libos.Guess_fail -> (
      match !scope with
      | None -> finish (Aborted "sys_guess_fail outside a strategy scope")
      | Some sc ->
        let output = harvest () in
        stats.fails <- stats.fails + 1;
        record Fail output;
        schedule sc;
        loop ())
    | Libos.Guess_hint { dist } ->
      pending_hint := dist;
      Cpu.set machine.cpu Reg.rax 0;
      loop ()
    | Libos.Exited { status } -> (
      let output = harvest () in
      match !scope with
      | None -> finish (Completed status)
      | Some sc -> (
        stats.exits <- stats.exits + 1;
        record (Exit status) output;
        match mode with
        | `First_exit -> finish (Stopped_first_exit status)
        | `Run_to_completion ->
          schedule sc;
          loop ()))
    | Libos.Killed reason -> (
      let output = harvest () in
      match !scope with
      | None -> finish (Aborted (reason_to_string reason))
      | Some sc ->
        stats.kills <- stats.kills + 1;
        record (Path_killed (reason_to_string reason)) output;
        schedule sc;
        loop ())
  in
  loop ()

let run_image ?mode ?fuel_per_step ?max_extensions ?strategy_override
    ?(files = []) ?stdin image =
  let phys = Mem.Phys_mem.create () in
  let machine = Libos.boot phys image in
  List.iter (fun (path, content) -> Libos.add_file machine ~path content) files;
  Option.iter (Libos.set_stdin machine) stdin;
  run ?mode ?fuel_per_step ?max_extensions ?strategy_override machine
