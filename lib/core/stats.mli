(** Exploration statistics: search events plus the memory-subsystem events
    accumulated while exploring.  One record per {!Explorer.run}. *)

type t = {
  mutable guesses : int;               (** [sys_guess] calls served *)
  mutable extensions_pushed : int;
  mutable extensions_evaluated : int;
  mutable fails : int;                 (** [sys_guess_fail] calls *)
  mutable exits : int;                 (** paths that terminated via exit *)
  mutable kills : int;                 (** paths killed (fault / fuel) *)
  mutable snapshots_created : int;
  mutable restores : int;
  mutable adopting_restores : int;     (** last-reference restores that adopted
                                           the snapshot's frames in place *)
  mutable evicted : int;               (** dropped by memory-bounded strategies *)
  mutable max_frontier : int;
  mutable max_live_snapshots : int;
  mutable instructions : int;          (** guest instructions retired *)
  mutable requeues : int;              (** crashed paths rescheduled *)
  mutable quarantined : int;           (** paths killed after the retry budget *)
  mutable steals : int;                (** work items consumed by a domain other
                                           than the one that produced them *)
  mutable payload_evictions : int;     (** snapshot payloads truncated outright *)
  mutable demotions : int;             (** live payloads compressed to deltas *)
  mutable promotions : int;            (** deltas rebuilt by decompress+apply *)
  mutable spills : int;                (** packed deltas written to host disk *)
  mutable spill_loads : int;           (** spilled deltas read back *)
  mutable replays : int;               (** truncated payloads rebuilt by re-execution *)
  mutable replay_fallbacks : int;      (** [get]s that promotion alone could not serve *)
  mutable replayed_instructions : int; (** re-executed during those rebuilds;
                                           already excluded from [instructions] *)
  mem : Mem.Mem_metrics.t;             (** memory events during the run *)
}

val create : unit -> t

val merge : t -> t -> unit
(** [merge acc x] folds [x] into [acc]: event counters and memory metrics
    add; [max_frontier]/[max_live_snapshots] combine by max (per-worker
    peaks observed against one shared frontier).  The domains backend of
    {!Parallel} merges each worker's private [t] at join. *)

val publish : t -> Obs.Metrics.t -> unit
(** Publish every field into a metrics registry ([explorer.*] and
    [mem.*] names) — the canonical machine-readable form used by
    [BENCH_E*.json].  Counter fields publish as counters, the extent
    peaks as max-combined gauges, so publishing per-worker records into
    one registry agrees with {!merge}-then-publish. *)

val pp : Format.formatter -> t -> unit
