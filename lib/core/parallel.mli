(** Multi-worker exploration — Figure 2's architecture, in two flavours.

    The paper's libOS runs one evaluation thread per hardware thread, all
    scheduling extensions from a shared search graph.  This module offers
    two backends behind one configuration:

    {b [`Cooperative]} (the default) simulates that architecture
    deterministically: each worker is a full virtual CPU with its own
    address space and OS state, but all workers allocate frames from one
    {!Mem.Phys_mem} — so a snapshot captured by one worker can be restored
    by any other (the page map is just frame references), and the
    generation discipline keeps their COW invariants sound across workers:
    frames inside a captured snapshot always belong to retired generations,
    so a worker restoring a sibling's candidate can never observe, or race
    with, the in-place writes of the worker that created it.  Execution is
    round-robin: every busy worker runs a fixed quantum of guest
    instructions per round, deterministically.  The round count is the
    virtual makespan, so parallel speedup is measurable without host
    threads.

    {b [`Domains]} is the true-multicore version: one OCaml 5 domain per
    worker, each owning a {e domain-private} {!Mem.Phys_mem} and machine,
    and running the full frame-recycling lifecycle (free-list reuse,
    zero-fill elision, adopting restores) against it.  Work items travel
    through a sharded, work-stealing {!Work_queue} carrying the producer's
    snapshot {e by reference}.  A domain popping its own item restores the
    snapshot directly — adopting its frames when the item is the last
    reference; a thief restores its local root replica and grafts a
    private copy of the producer's delta pages on top
    ({!Mem.Addr_space.import_delta}), safe because the item's extension
    ref pins those frames in retired generations until the thief retires
    the path and posts the ref back through the producer's mailbox
    (refcounts stay single-writer).  This is §3's "parallel
    depth-first-search strategy [that] simply forks without waiting", on
    real cores.  Two semantic deltas vs [`Cooperative]: [sys_share] pages
    are replicated per domain (writes after the scope opens stay
    domain-local), and [`Custom] strategies are rejected (their frontiers
    are typed to in-heap extensions).  Path completion order — and hence
    [terminals] order and, under [`First_exit], {e which} exit wins —
    depends on OS scheduling. *)

type backend = [ `Cooperative | `Domains ]

type config = {
  workers : int;
  quantum : int;
      (** guest instructions per scheduling slice: a worker's round quantum
          ([`Cooperative]) or its stop-flag polling interval ([`Domains]) *)
  strategy : Explorer.strategy;
  mode : [ `Run_to_completion | `First_exit ];
  max_extensions : int;
  backend : backend;
  retry_budget : int;
      (** total evaluation attempts per path before a crashing path is
          quarantined as [Path_killed] instead of aborting the run *)
  faults : Inject.plan option;
      (** deterministic fault injection: allocation failures, worker
          crashes and fuel jitter, threaded through both backends.  Faults
          fire only during worker-path evaluation — the coordinator phases
          (reaching the scope, draining after it) are unsupervised, so a
          recoverable plan can never abort the run. *)
}

val default_config : config
(** 4 workers, 20k-instruction quantum, DFS, run to completion,
    [`Cooperative], retry budget 3, no faults. *)

type result = {
  outcome : Explorer.outcome;
  transcript : string;       (** all workers' stdout, in completion order *)
  terminals : Explorer.terminal list;
  rounds : int;              (** virtual makespan; 0 under [`Domains] *)
  busy_rounds : int array;
      (** per-worker rounds spent executing ([`Cooperative]) or extensions
          evaluated ([`Domains]) — either way, the load-balance picture.
          Total guest instructions live in [stats.instructions]. *)
  stats : Stats.t;
  domain_metrics : Obs.Metrics.t array;
      (** per-domain metrics registries under [`Domains]: index 0 is the
          coordinator domain, then the spawned workers in order.  Each
          holds the [explorer.*]/[mem.*] names {!Stats.publish} emits
          (domain 0 additionally carries [queue.steal_batches] and
          [queue.stolen_items]); merging them with {!Obs.Metrics.merge}
          agrees with [stats].  Empty for [`Cooperative] runs and for runs
          aborted before workers spawned. *)
}

val run : ?config:config -> Isa.Asm.image -> result
(** Boot [workers] machines and explore.  The guest protocol is identical
    to {!Explorer}: worker 0 runs until [sys_guess_strategy]; the scope's
    extensions are then evaluated by all workers; when the frontier drains
    and every worker is idle, worker 0 resumes from the root with 0 in
    [rax].  Under [`Domains] the terminal set and final outcome match
    [`Cooperative] for confluent guests; ordering may differ (see above). *)
