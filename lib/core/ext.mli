(** A candidate extension step (§3.1): "simply a reference to their parent
    partial candidate and the extension number".  Deferred computation —
    nothing runs until a strategy schedules it. *)

type payload =
  | Snap of Snapshot.t
      (** the parent partial candidate, held directly *)
  | Ref of Reclaim.handle
      (** the parent held through a {!Reclaim} store, so its snapshot can
          be evicted under memory pressure and rebuilt by replay when the
          extension is finally scheduled *)

type t = {
  payload : payload;               (** the parent partial candidate *)
  index : int;                     (** the extension number *)
  meta : Search.Frontier.meta;
}
