module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg

exception Replay_diverged of string

type handle = int

(* The skeleton is permanent and tiny (a few ints per entry); only the
   payload — the snapshot itself, whose page map pins physical frames — is
   evictable.  Reconstruction needs nothing but the edge metadata: restore
   the nearest materialised ancestor and re-execute each edge's choice. *)
type entry = {
  e_parent : handle option;
  e_choice : int;              (* rax delivered when re-running the edge *)
  e_stdin : string option;     (* stdin installed alongside (Service) *)
  e_depth : int;
  e_pinned : bool;             (* roots: always materialised *)
  mutable e_payload : Snapshot.t option;
  mutable e_last_used : int;
  mutable e_released : bool;   (* dropped by the client; skeleton kept for
                                  descendants' replays *)
  (* Eager frame reclamation.  A released entry whose children are all dead
     can return its payload's delta-vs-parent frames to the allocator
     immediately instead of waiting for the GC — but only if the payload it
     was captured from is still the parent's current materialisation.
     Replay rebuilds payloads with fresh frames, so each materialisation
     gets a serial and children record which one they were built on; a
     delta against the wrong materialisation would free shared frames. *)
  mutable e_children : int;
  mutable e_dead_children : int;
  mutable e_dead : bool;       (* released, and every child dead *)
  mutable e_serial : int;      (* serial of the current materialisation *)
  mutable e_built_on : int;    (* parent's serial this payload derives from *)
}

type t = {
  machine : Libos.t;
  fuel : int;
  ids : Snapshot.ids;
  entries : (handle, entry) Hashtbl.t;
  mutable next : int;
  mutable clock : int;
  mutable serial_next : int;
  mutable evictions : int;
  mutable replays : int;
  mutable replayed_instructions : int;
  suppressed_mem : Mem.Mem_metrics.t;
}

let create ?(fuel_per_step = 50_000_000) (machine : Libos.t) =
  { machine;
    fuel = fuel_per_step;
    ids = Snapshot.ids ();
    entries = Hashtbl.create 64;
    next = 0;
    clock = 0;
    serial_next = 0;
    evictions = 0;
    replays = 0;
    replayed_instructions = 0;
    suppressed_mem = Mem.Mem_metrics.create () }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let entry t h =
  match Hashtbl.find_opt t.entries h with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Reclaim: unknown reference %d" h)

let fresh t e =
  let h = t.next in
  t.next <- h + 1;
  Hashtbl.replace t.entries h e;
  h

let fresh_serial t =
  let s = t.serial_next in
  t.serial_next <- s + 1;
  s

let add_root t snap =
  fresh t
    { e_parent = None; e_choice = 0; e_stdin = None; e_depth = 0;
      e_pinned = true; e_payload = Some snap; e_last_used = tick t;
      e_released = false; e_children = 0; e_dead_children = 0;
      e_dead = false; e_serial = fresh_serial t; e_built_on = -1 }

let add t ~parent ~choice ?stdin ~depth snap =
  let p = entry t parent in
  p.e_children <- p.e_children + 1;
  fresh t
    { e_parent = Some parent; e_choice = choice; e_stdin = stdin;
      e_depth = depth; e_pinned = false; e_payload = Some snap;
      e_last_used = tick t; e_released = false; e_children = 0;
      e_dead_children = 0; e_dead = false; e_serial = fresh_serial t;
      e_built_on = p.e_serial }

let depth t h = (entry t h).e_depth
let is_materialised t h = (entry t h).e_payload <> None
let is_released t h = (entry t h).e_released

(* [e] just became dead (released, every child dead).  Propagate upward:
   an ancestor may have been waiting on this subtree.  Propagation only —
   ancestors dropped their payloads when they were released, so there is
   nothing left to free up there. *)
let rec mark_dead t e =
  if not e.e_dead then begin
    e.e_dead <- true;
    match e.e_parent with
    | None -> ()
    | Some p ->
      let pe = entry t p in
      pe.e_dead_children <- pe.e_dead_children + 1;
      if pe.e_released && pe.e_dead_children = pe.e_children then
        mark_dead t pe
  end

let release t h =
  let e = entry t h in
  if not e.e_released then begin
    e.e_released <- true;
    if not e.e_pinned then begin
      (* Instantly dead — no live descendants share this payload's frames —
         so its delta against the parent payload is branch-private and can
         feed the allocator's free list right now.  The serial check pins
         both payloads to the materialisations the delta is valid for. *)
      (match e.e_payload, e.e_parent with
      | Some snap, Some p when e.e_dead_children = e.e_children -> (
        let pe = entry t p in
        match pe.e_payload with
        | Some parent_snap when e.e_built_on = pe.e_serial ->
          let phys = Mem.Addr_space.phys t.machine.Libos.aspace in
          if Mem.Phys_mem.recycling phys then
            ignore (Snapshot.free_delta ~phys ~parent:parent_snap snap)
        | Some _ | None -> ())
      | _ -> ());
      e.e_payload <- None
    end;
    if e.e_dead_children = e.e_children then mark_dead t e
  end

(* Re-execute the edges from [base] down the chain, capturing a fresh
   payload at each hop.  Every hop deterministically re-runs guest code the
   original run already executed, so its output and its costs are not new
   information: stdout is discarded (the caller resets its harvest marker
   after the restore that follows), and the instruction/memory-metric
   deltas are accumulated here so drivers can subtract them from the
   figures they report. *)
let replay t base base_serial chain =
  let m = t.machine in
  if Obs.Trace.enabled () then
    Obs.Trace.span_begin ~a:(List.length chain) Obs.Names.reclaim_replay;
  let retired0 = m.Libos.cpu.Cpu.retired in
  let mem0 = Mem.Mem_metrics.copy (Mem.Addr_space.metrics m.Libos.aspace) in
  Snapshot.restore m base;
  let prev_serial = ref base_serial in
  List.iter
    (fun e ->
      Cpu.set m.Libos.cpu Reg.rax e.e_choice;
      Option.iter (Libos.set_stdin m) e.e_stdin;
      let rec step () =
        match Libos.run m ~fuel:t.fuel with
        | Libos.Guess _ -> ()
        | Libos.Guess_hint _ ->
          Cpu.set m.Libos.cpu Reg.rax 0;
          step ()
        | Libos.Guess_strategy _ ->
          Cpu.set m.Libos.cpu Reg.rax 1;
          step ()
        | (Libos.Guess_fail | Libos.Exited _ | Libos.Killed _) as stop ->
          raise
            (Replay_diverged
               (Format.asprintf
                  "replay reached %a where the original run published a \
                   choice point" Libos.pp_stop stop))
      in
      step ();
      t.replays <- t.replays + 1;
      e.e_payload <- Some (Snapshot.capture ~ids:t.ids ~depth:e.e_depth m);
      (* fresh frames, fresh materialisation: re-stamp the serial chain *)
      e.e_serial <- fresh_serial t;
      e.e_built_on <- !prev_serial;
      prev_serial := e.e_serial;
      e.e_last_used <- tick t)
    chain;
  t.replayed_instructions <-
    t.replayed_instructions + (m.Libos.cpu.Cpu.retired - retired0);
  if Obs.Trace.enabled () then
    Obs.Trace.span_end ~a:(List.length chain)
      ~b:(m.Libos.cpu.Cpu.retired - retired0)
      Obs.Names.reclaim_replay;
  Mem.Mem_metrics.add t.suppressed_mem
    (Mem.Mem_metrics.diff (Mem.Addr_space.metrics m.Libos.aspace) mem0)

let get t h =
  let e = entry t h in
  if e.e_released then
    invalid_arg (Printf.sprintf "Reclaim: reference %d was released" h);
  e.e_last_used <- tick t;
  match e.e_payload with
  | Some s -> s
  | None ->
    (* Walk up to the nearest materialised ancestor, then replay down. *)
    let rec up chain h' =
      let e' = entry t h' in
      match e'.e_payload with
      | Some base -> base, e'.e_serial, chain
      | None -> (
        match e'.e_parent with
        | Some p -> up (e' :: chain) p
        | None ->
          (* unreachable: roots are pinned and never evicted *)
          invalid_arg "Reclaim: evicted entry with no materialised ancestor")
    in
    let base, base_serial, chain = up [] h in
    replay t base base_serial chain;
    (match e.e_payload with
    | Some s -> s
    | None -> assert false)

let evict t h =
  let e = entry t h in
  if e.e_pinned || e.e_payload = None then false
  else begin
    e.e_payload <- None;
    t.evictions <- t.evictions + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:h ~b:e.e_depth Obs.Names.reclaim_evict;
    true
  end

(* Deepest first, then least-recently-resumed: deep payloads are cheap to
   rebuild (their parents are shallower, hence evicted later) and cold
   payloads are the least likely to be resumed soon. *)
let evict_under_pressure t =
  let victims =
    Hashtbl.fold
      (fun h e acc ->
        if e.e_pinned || e.e_payload = None then acc
        else (e.e_depth, e.e_last_used, h) :: acc)
      t.entries []
  in
  let victims =
    List.sort
      (fun (d1, u1, _) (d2, u2, _) ->
        match compare d2 d1 with 0 -> compare u1 u2 | c -> c)
      victims
  in
  let target = max 1 (List.length victims / 2) in
  let rec go n = function
    | [] -> n
    | _ when n >= target -> n
    | (_, _, h) :: rest -> go (if evict t h then n + 1 else n) rest
  in
  if victims = [] then 0 else go 0 victims

let evict_all t =
  Hashtbl.fold (fun h _ acc -> h :: acc) t.entries []
  |> List.fold_left (fun n h -> if evict t h then n + 1 else n) 0

let pressure_handler t = fun () -> ignore (evict_under_pressure t)

let snapshot_ids t = t.ids

let materialised t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.e_payload with Some s -> s :: acc | None -> acc)
    t.entries []

let live_entries t =
  Hashtbl.fold
    (fun _ e n -> if e.e_released then n else n + 1)
    t.entries 0

let materialised_count t =
  Hashtbl.fold
    (fun _ e n -> if e.e_payload = None then n else n + 1)
    t.entries 0

let evictions t = t.evictions
let replays t = t.replays
let replayed_instructions t = t.replayed_instructions
let suppressed_mem t = t.suppressed_mem
