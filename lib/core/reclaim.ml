module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module As = Mem.Addr_space

exception Replay_diverged of string

type handle = int

(* Payload tiers.  Tier 0 holds the live snapshot (its page map pins
   physical frames).  A demotion replaces it with the byte delta against
   the nearest still-live ancestor: first uncompressed page copies ([Raw]
   — produced inside the allocator's pressure handler, which must not
   spend time compressing), then codec-packed on the next store access
   ([Packed], tier 1), then optionally spilled to host disk ([Spilled],
   tier 2).  A truncated entry (payload [None], tier 3) keeps only the
   skeleton and falls back to deterministic replay. *)
type blob =
  | Raw of (int * string) list
  | Packed of string
  | Spilled of { path : string; len : int }

type delta = {
  mutable d_blob : blob;
  d_dead : int list;           (* vpns unmapped relative to the base *)
  d_regs : Cpu.saved;
  d_os : Libos.os_state;
  d_base : handle option;      (* ancestor the pages diff against; [None]
                                  = full image (a root, or no live
                                  ancestor existed at demotion time) *)
  d_raw_bytes : int;           (* page bytes before packing *)
}

type payload =
  | Live of Snapshot.t
  | Demoted of delta

(* The skeleton is permanent and tiny (a few ints per entry); only the
   payload is reclaimable, and it degrades through the tiers above before
   the store ever falls back to re-execution.

   Frame lifetime rides on the {!Snapshot} extension-refcount discipline
   rather than on the GC: the store holds one extension ref per Live
   payload (taken at [add]/[add_root] and at every reconstruction) plus
   one on the record the machine's current state derives from
   ([t.anchor]).  Demoting, releasing or truncating a Live payload gives
   its ref back, and [Snapshot.try_free] returns the record's
   delta-vs-parent frames to the allocator the moment no child record and
   no extension shares them — cascading up abandoned chains — so the
   pressure handler reclaims frames without waiting for a major GC.
   Records captured without a parent (the pinned root, callers that do
   not thread lineage) simply fall back to GC reclamation: failing to
   free eagerly leaks nothing. *)
type entry = {
  e_parent : handle option;
  e_choice : int;              (* rax delivered when re-running the edge *)
  e_stdin : string option;     (* stdin installed alongside (Service) *)
  e_depth : int;
  e_pinned : bool;             (* roots: never truncated or spilled *)
  mutable e_payload : payload option;
  mutable e_last_used : int;
  mutable e_released : bool;   (* dropped by the client; skeleton kept for
                                  descendants' replays *)
}

type t = {
  machine : Libos.t;
  fuel : int;
  ids : Snapshot.ids;
  entries : (handle, entry) Hashtbl.t;
  spill_files : (string, unit) Hashtbl.t;
  spill_threshold : int;
  mutable next : int;
  mutable clock : int;
  mutable anchor : Snapshot.t option;
      (* the record whose materialisation the machine's current state
         derives from (last capture or [get]); the store keeps an
         extension ref on it so explicit freeing never touches frames the
         live address space still maps *)
  mutable pending_raw : int;   (* demotions awaiting compression; a hint —
                                  [flush_pending] rescans and resets *)
  mutable evictions : int;     (* truncations (tier 3), not demotions *)
  mutable demotions : int;
  mutable promotions : int;
  mutable spills : int;
  mutable spill_loads : int;
  mutable replays : int;
  mutable replay_fallbacks : int;
  mutable replayed_instructions : int;
  suppressed_mem : Mem.Mem_metrics.t;
}

let create ?(fuel_per_step = 50_000_000) ?(spill_threshold = max_int)
    (machine : Libos.t) =
  let t =
    { machine;
      fuel = fuel_per_step;
      ids = Snapshot.ids ();
      entries = Hashtbl.create 64;
      spill_files = Hashtbl.create 8;
      spill_threshold;
      next = 0;
      clock = 0;
      anchor = None;
      pending_raw = 0;
      evictions = 0;
      demotions = 0;
      promotions = 0;
      spills = 0;
      spill_loads = 0;
      replays = 0;
      replay_fallbacks = 0;
      replayed_instructions = 0;
      suppressed_mem = Mem.Mem_metrics.create () }
  in
  (* Spill files live in the host temp dir; a store that dies with spilled
     deltas must not leak them. *)
  Gc.finalise
    (fun t ->
      Hashtbl.iter
        (fun path () -> try Sys.remove path with Sys_error _ -> ())
        t.spill_files)
    t;
  t

let phys_of t = As.phys t.machine.Libos.aspace

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let entry t h =
  match Hashtbl.find_opt t.entries h with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Reclaim: unknown reference %d" h)

let fresh t e =
  let h = t.next in
  t.next <- h + 1;
  Hashtbl.replace t.entries h e;
  h

(* The machine's state now derives from [snap]'s materialisation: move the
   store's machine ref there.  Retain-before-release so re-anchoring on the
   same record is a no-op rather than a transient zero. *)
let set_anchor t snap =
  Snapshot.retain snap;
  (match t.anchor with
  | Some prev -> Snapshot.release_ext ~phys:(phys_of t) prev
  | None -> ());
  t.anchor <- Some snap

let add_root t snap =
  Snapshot.retain snap;
  set_anchor t snap;
  fresh t
    { e_parent = None; e_choice = 0; e_stdin = None; e_depth = 0;
      e_pinned = true; e_payload = Some (Live snap); e_last_used = tick t;
      e_released = false }

let add t ~parent ~choice ?stdin ~depth snap =
  ignore (entry t parent);
  Snapshot.retain snap;
  set_anchor t snap;
  fresh t
    { e_parent = Some parent; e_choice = choice; e_stdin = stdin;
      e_depth = depth; e_pinned = false; e_payload = Some (Live snap);
      e_last_used = tick t; e_released = false }

let depth t h = (entry t h).e_depth

let tier t h =
  match (entry t h).e_payload with
  | Some (Live _) -> 0
  | Some (Demoted { d_blob = Raw _ | Packed _; _ }) -> 1
  | Some (Demoted { d_blob = Spilled _; _ }) -> 2
  | None -> 3

let is_materialised t h = tier t h = 0
let is_released t h = (entry t h).e_released

(* {1 Delta packing}

   Packed layout (before compression): varint page count, then per page a
   varint vpn, a varint length and the raw bytes.  The whole buffer goes
   through the {!Stdx.Codec} block codec, whose stored fallback bounds
   incompressible deltas. *)

let put_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let get_varint s pos =
  let v = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  !v

let pack_pages pages =
  let buf = Buffer.create 4096 in
  put_varint buf (List.length pages);
  List.iter
    (fun (vpn, data) ->
      put_varint buf vpn;
      put_varint buf (String.length data);
      Buffer.add_string buf data)
    pages;
  Stdx.Codec.compress (Buffer.contents buf)

let unpack_pages packed =
  let s = Stdx.Codec.decompress packed in
  let pos = ref 0 in
  let n = get_varint s pos in
  List.init n (fun _ ->
      let vpn = get_varint s pos in
      let len = get_varint s pos in
      let data = String.sub s !pos len in
      pos := !pos + len;
      (vpn, data))

(* Bytes a delta currently holds in host memory / on disk, for the
   accounting counters in {!Mem.Phys_mem}. *)
let drop_delta t (d : delta) =
  let phys = phys_of t in
  match d.d_blob with
  | Raw _ -> Mem.Phys_mem.note_delta_bytes phys (-d.d_raw_bytes)
  | Packed p -> Mem.Phys_mem.note_delta_bytes phys (-(String.length p))
  | Spilled { path; len } ->
    Mem.Phys_mem.note_spill_bytes phys (-len);
    Hashtbl.remove t.spill_files path;
    (try Sys.remove path with Sys_error _ -> ())

(* {1 Demotion (tier 0 -> 1)} *)

(* Replace the live snapshot with its byte delta against the nearest
   still-live ancestor (or the full image when none exists — always the
   case for roots).  Reads frame bytes and allocates only OCaml heap,
   never frames, so it is safe inside the allocator's pressure handler;
   compression is deferred to [flush_pending] for the same reason the
   handler must stay fast.  The delta is pure data: snapshot contents are
   logically deterministic, so it stays valid however the base is later
   rebuilt (promotion or replay). *)
let demote t h =
  let e = entry t h in
  match e.e_payload with
  | None | Some (Demoted _) -> false
  | Some (Live snap) ->
    let rec live_ancestor = function
      | None -> None
      | Some h' -> (
        let e' = entry t h' in
        match e'.e_payload with
        | Some (Live s) -> Some (h', s)
        | Some (Demoted _) | None -> live_ancestor e'.e_parent)
    in
    let base = live_ancestor e.e_parent in
    let pages, dead =
      match base with
      | Some (_, bs) ->
        As.snapshot_delta ~parent:bs.Snapshot.mem snap.Snapshot.mem
      | None -> (As.snapshot_contents snap.Snapshot.mem, [])
    in
    let raw_bytes =
      List.fold_left (fun n (_, data) -> n + String.length data) 0 pages
    in
    Mem.Phys_mem.note_delta_bytes (phys_of t) raw_bytes;
    e.e_payload <-
      Some
        (Demoted
           { d_blob = Raw pages; d_dead = dead; d_regs = snap.Snapshot.regs;
             d_os = snap.Snapshot.os; d_base = Option.map fst base;
             d_raw_bytes = raw_bytes });
    (* The delta above copied every byte it needs; give the store's ref on
       the record back.  [Snapshot.try_free] returns its delta-vs-parent
       frames to the allocator right here — and cascades up released
       chains — unless a child record still inherits them or the machine's
       current state derives from this record (the anchor ref), in which
       case the frames come back the moment the last sharer drains.  This
       is what keeps a pressure event from needing a major collection. *)
    Snapshot.release_ext ~phys:(phys_of t) snap;
    t.pending_raw <- t.pending_raw + 1;
    t.demotions <- t.demotions + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:h ~b:e.e_depth Obs.Names.reclaim_demote;
    true

(* {1 Spilling (tier 1 -> 2)} *)

let spill t h =
  let e = entry t h in
  match e.e_payload with
  | Some (Demoted ({ d_blob = Packed packed; _ } as d)) when not e.e_pinned
    ->
    let path = Filename.temp_file "lwsnap-delta" ".bin" in
    let oc = open_out_bin path in
    output_string oc packed;
    close_out oc;
    Hashtbl.replace t.spill_files path ();
    let len = String.length packed in
    let phys = phys_of t in
    Mem.Phys_mem.note_delta_bytes phys (-len);
    Mem.Phys_mem.note_spill_bytes phys len;
    d.d_blob <- Spilled { path; len };
    t.spills <- t.spills + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:h ~b:len Obs.Names.reclaim_spill;
    true
  | _ -> false

(* Pack every Raw delta, then apply the spill policy: while the packed
   bytes held in memory exceed the threshold, spill the coldest
   non-pinned packed deltas to disk.  Called on the store-access paths
   ([get]), never from the pressure handler. *)
let flush_pending t =
  if t.pending_raw > 0 then begin
    t.pending_raw <- 0;
    Hashtbl.iter
      (fun _ e ->
        match e.e_payload with
        | Some (Demoted ({ d_blob = Raw pages; _ } as d)) ->
          let packed = pack_pages pages in
          Mem.Phys_mem.note_delta_bytes (phys_of t)
            (String.length packed - d.d_raw_bytes);
          d.d_blob <- Packed packed
        | _ -> ())
      t.entries
  end;
  if
    t.spill_threshold < max_int
    && Mem.Phys_mem.delta_bytes_held (phys_of t) > t.spill_threshold
  then begin
    let candidates =
      Hashtbl.fold
        (fun h e acc ->
          match e.e_payload with
          | Some (Demoted { d_blob = Packed _; _ }) when not e.e_pinned ->
            (e.e_last_used, h) :: acc
          | _ -> acc)
        t.entries []
    in
    let phys = phys_of t in
    List.iter
      (fun (_, h) ->
        if Mem.Phys_mem.delta_bytes_held phys > t.spill_threshold then
          ignore (spill t h))
      (List.sort compare candidates)
  end

(* {1 Reconstruction (promotion, with replay as the fallback)} *)

let load_pages t (d : delta) =
  match d.d_blob with
  | Raw pages -> pages
  | Packed packed -> unpack_pages packed
  | Spilled { path; len } ->
    let packed = In_channel.with_open_bin path In_channel.input_all in
    Hashtbl.remove t.spill_files path;
    (try Sys.remove path with Sys_error _ -> ());
    let phys = phys_of t in
    Mem.Phys_mem.note_spill_bytes phys (-len);
    Mem.Phys_mem.note_delta_bytes phys len;
    t.spill_loads <- t.spill_loads + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:len Obs.Names.reclaim_spill_load;
    (* back in memory: uniform accounting for the drop after promotion *)
    d.d_blob <- Packed packed;
    unpack_pages packed

(* Rebuild the entry's live snapshot.  A demoted entry promotes by
   decompress+apply — zero guest instructions: materialise its base (the
   recursion bottoms out at a live ancestor, a full-image delta, or a
   pinned root), restore the base's page map, apply the byte delta, load
   the saved registers and OS state, capture.  A truncated entry replays
   its one edge from its parent's materialisation, exactly as before the
   tiers existed.  Both paths clobber the machine (every driver restores a
   snapshot right after a [get], so this is free) and both re-stamp the
   serial chain: fresh frames mean a fresh materialisation. *)
let rec materialise t h =
  let e = entry t h in
  match e.e_payload with
  | Some (Live s) -> s
  | Some (Demoted d) -> promote t h e d
  | None -> (
    match e.e_parent with
    | Some p ->
      let base = materialise t p in
      replay_edge t e base;
      (match e.e_payload with
      | Some (Live s) -> s
      | _ -> assert false)
    | None ->
      (* unreachable: roots are pinned and never truncated *)
      invalid_arg "Reclaim: evicted entry with no materialised ancestor")

and promote t h e d =
  let base =
    match d.d_base with
    | Some bh -> Some (bh, materialise t bh)
    | None -> None
  in
  let m = t.machine in
  if Obs.Trace.enabled () then
    Obs.Trace.span_begin ~a:h Obs.Names.reclaim_promote;
  (* The machine is about to derive from the base's map: anchor it before
     the page applications below allocate (and possibly fire pressure). *)
  (match base with Some (_, bs) -> set_anchor t bs | None -> ());
  let mem0 = Mem.Mem_metrics.copy (As.metrics m.Libos.aspace) in
  let pages = load_pages t d in
  Cpu.load m.Libos.cpu d.d_regs;
  As.restore_pages m.Libos.aspace
    ~base:(Option.map (fun (_, s) -> s.Snapshot.mem) base)
    ~pages ~dead:d.d_dead;
  Libos.os_restore m d.d_os;
  let snap =
    Snapshot.capture ~ids:t.ids
      ?parent:(Option.map snd base)
      ~depth:e.e_depth m
  in
  (* Promotion rebuilds state the original run already paid for; keep its
     memory-metric costs out of the driver's fault-free figures. *)
  Mem.Mem_metrics.add t.suppressed_mem
    (Mem.Mem_metrics.diff (As.metrics m.Libos.aspace) mem0);
  drop_delta t d;
  e.e_payload <- Some (Live snap);
  Snapshot.retain snap;
  set_anchor t snap;
  e.e_last_used <- tick t;
  t.promotions <- t.promotions + 1;
  if Obs.Trace.enabled () then
    Obs.Trace.span_end ~a:h ~b:(List.length pages) Obs.Names.reclaim_promote;
  snap

(* Re-execute one edge: restore the parent's payload, deliver the recorded
   choice (and stdin), run to the next publish, capture.  The re-run's
   output and costs are not new information: stdout is discarded (the
   caller resets its harvest marker after the restore that follows) and
   the instruction/memory-metric deltas are accumulated for drivers to
   subtract from the figures they report. *)
and replay_edge t e base =
  let m = t.machine in
  if Obs.Trace.enabled () then
    Obs.Trace.span_begin ~a:1 Obs.Names.reclaim_replay;
  let retired0 = m.Libos.cpu.Cpu.retired in
  let mem0 = Mem.Mem_metrics.copy (As.metrics m.Libos.aspace) in
  Snapshot.restore m base;
  set_anchor t base;
  Cpu.set m.Libos.cpu Reg.rax e.e_choice;
  Option.iter (Libos.set_stdin m) e.e_stdin;
  (* the shared replay engine auto-resumes hint/strategy stops exactly as
     the recorder's replayer does — one deterministic re-execution path *)
  (match Record.Engine.run_to_publish m ~fuel:t.fuel with
  | Libos.Guess _ -> ()
  | stop ->
    raise
      (Replay_diverged
         (Format.asprintf
            "replay reached %a where the original run published a \
             choice point" Libos.pp_stop stop)));
  t.replays <- t.replays + 1;
  let snap = Snapshot.capture ~ids:t.ids ~parent:base ~depth:e.e_depth m in
  e.e_payload <- Some (Live snap);
  Snapshot.retain snap;
  set_anchor t snap;
  e.e_last_used <- tick t;
  t.replayed_instructions <-
    t.replayed_instructions + (m.Libos.cpu.Cpu.retired - retired0);
  if Obs.Trace.enabled () then
    Obs.Trace.span_end ~a:1
      ~b:(m.Libos.cpu.Cpu.retired - retired0)
      Obs.Names.reclaim_replay;
  Mem.Mem_metrics.add t.suppressed_mem
    (Mem.Mem_metrics.diff (As.metrics m.Libos.aspace) mem0)

let get t h =
  let e = entry t h in
  if e.e_released then
    invalid_arg (Printf.sprintf "Reclaim: reference %d was released" h);
  (* Deliberately NOT an unconditional [flush_pending]: the scheduler pops
     right after a pressure event, and packing the whole pending set here
     would put the codec on the search's critical path (and waste it — a
     delta popped soon after demotion is about to be applied, not stored).
     Raw deltas already gave their frames back; compressing them buys heap,
     which only matters once the spill policy has a threshold to enforce. *)
  if t.spill_threshold < max_int then flush_pending t;
  e.e_last_used <- tick t;
  let s =
    match e.e_payload with
    | Some (Live s) -> s
    | Some (Demoted _) | None ->
      let replays0 = t.replays in
      let s = materialise t h in
      (* A reconstruction that had to re-execute even one edge means a
         delta chain was truncated under it: the promotion path alone
         could not serve this [get]. *)
      if t.replays > replays0 then
        t.replay_fallbacks <- t.replay_fallbacks + 1;
      s
  in
  (* Every driver restores the snapshot it just got (reconstruction
     already clobbered the machine with it anyway), so the machine's state
     now derives from this record. *)
  set_anchor t s;
  s

(* {1 Lifecycle} *)

let release t h =
  let e = entry t h in
  if not e.e_released then begin
    e.e_released <- true;
    if not e.e_pinned then begin
      (match e.e_payload with
      | Some (Live snap) ->
        (* The store's ref drains; [try_free] feeds the record's
           branch-private frames to the allocator's free list right now
           unless a child record or the machine still shares them. *)
        Snapshot.release_ext ~phys:(phys_of t) snap
      | Some (Demoted d) -> drop_delta t d
      | None -> ());
      e.e_payload <- None
    end
  end

let evict t h =
  let e = entry t h in
  match e.e_payload with
  | None -> false
  | Some _ when e.e_pinned -> false
  | Some payload ->
    (match payload with
    | Live snap -> Snapshot.release_ext ~phys:(phys_of t) snap
    | Demoted d -> drop_delta t d);
    e.e_payload <- None;
    t.evictions <- t.evictions + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~a:h ~b:e.e_depth Obs.Names.reclaim_evict;
    true

(* {1 Pressure policy} *)

(* Deepest first, then least-recently-resumed: deep payloads carry the
   longest COW tails (the frames worth shedding) and cold payloads are the
   least likely to be resumed soon.  Deepest-first also means every victim
   still finds its parent live when it computes its delta, so demotion
   under pressure always produces one-edge deltas.  Demotion is
   feedback-driven: each victim's [release_ext] returns its delta frames
   straight to the allocator, so stop as soon as the live count drops back
   under the watermark — shedding more would copy pages (and later promote
   them back) for frames nobody needed.  Only when the explicit frees
   never clear the mark (shared frames, an anchor chain) does the sweep
   run through every victim and leave the rest to the allocator's
   collection. *)
let demote_under_pressure t =
  let phys = phys_of t in
  let rec go n = function
    | [] -> n
    | _ when n > 0 && Mem.Phys_mem.below_watermark phys -> n
    | (_, _, h) :: rest -> go (if demote t h then n + 1 else n) rest
  in
  Hashtbl.fold
    (fun h e acc ->
      match e.e_payload with
      | Some (Live _) when not e.e_pinned ->
        (e.e_depth, e.e_last_used, h) :: acc
      | _ -> acc)
    t.entries []
  |> List.sort (fun (d1, u1, _) (d2, u2, _) ->
         match compare d2 d1 with 0 -> compare u1 u2 | c -> c)
  |> go 0

(* Demote every live payload, deepest first (so each diffs against a
   still-live parent), pinned roots included — they stop at tier 1. *)
let demote_all t =
  Hashtbl.fold
    (fun h e acc ->
      match e.e_payload with
      | Some (Live _) -> (e.e_depth, h) :: acc
      | _ -> acc)
    t.entries []
  |> List.sort (fun (d1, _) (d2, _) -> compare d2 d1)
  |> List.fold_left (fun n (_, h) -> if demote t h then n + 1 else n) 0

let evict_all t =
  Hashtbl.fold (fun h _ acc -> h :: acc) t.entries []
  |> List.fold_left (fun n h -> if evict t h then n + 1 else n) 0

let pressure_handler t = fun () -> ignore (demote_under_pressure t)

(* {1 Introspection} *)

let snapshot_ids t = t.ids

let materialised t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.e_payload with Some (Live s) -> s :: acc | _ -> acc)
    t.entries []

let live_entries t =
  Hashtbl.fold
    (fun _ e n -> if e.e_released then n else n + 1)
    t.entries 0

let materialised_count t =
  Hashtbl.fold
    (fun _ e n ->
      match e.e_payload with Some (Live _) -> n + 1 | _ -> n)
    t.entries 0

let evictions t = t.evictions
let demotions t = t.demotions
let promotions t = t.promotions
let spills t = t.spills
let spill_loads t = t.spill_loads
let replays t = t.replays
let replay_fallbacks t = t.replay_fallbacks
let replayed_instructions t = t.replayed_instructions
let suppressed_mem t = t.suppressed_mem
