(** System-level backtracking: the scheduler behind [sys_guess],
    [sys_guess_fail] and [sys_guess_strategy].

    The protocol follows §3 and Figure 1 of the paper exactly:

    - [sys_guess_strategy(s)] opens an exploration scope.  It returns 1 to
      the path that explores, and 0 once the whole scope is exhausted (the
      root snapshot is restored, so the program continues after the call —
      the way Figure 1's [main] falls out of the [if] when every answer has
      been printed).
    - [sys_guess(n)] captures a lightweight snapshot (the partial
      candidate), creates [n] extensions — (parent snapshot, index) pairs,
      nothing more — and asks the strategy for the next extension to
      evaluate; evaluation restores the snapshot and returns the extension
      number in [rax].
    - [sys_guess_fail()] discards the executing extension and schedules the
      next one; it never returns into the failing path.
    - [sys_guess_hint(d)] attaches a heuristic distance to the next guess's
      extensions, consumed by A*-family strategies.

    Guest stdout follows Prolog semantics, as in the paper's n-queens
    example: text written to fd 1 is emitted to the global transcript at
    the next scheduling point and survives backtracking, while file-system
    effects, descriptors and the heap are rolled back with the snapshot. *)

type strategy =
  [ `Dfs
  | `Bfs
  | `Astar
  | `Sma of int   (** memory-bounded A* with the given frontier capacity *)
  | `Wastar of float  (** weighted A* (hint weight) *)
  | `Beam of int  (** greedy beam search with the given width *)
  | `Dfs_bounded of int  (** DFS refusing extensions beyond this depth *)
  | `Random of int  (** seed *)
  | `Custom of (unit -> Ext.t Search.Frontier.t) ]

type terminal_kind =
  | Exit of int                (** the path terminated via exit(status) *)
  | Fail                       (** sys_guess_fail *)
  | Path_killed of string      (** fault or fuel exhaustion, described *)

type terminal = {
  kind : terminal_kind;
  output : string;  (** stdout produced by this path since its snapshot *)
  depth : int;
}

type outcome =
  | Completed of int       (** guest exited outside any scope with status *)
  | Stopped_first_exit of int  (** [`First_exit] mode hit an in-scope exit *)
  | Aborted of string      (** protocol violation or machine kill *)

type result = {
  outcome : outcome;
  transcript : string;     (** global stdout, Prolog-style *)
  terminals : terminal list;  (** in completion order *)
  stats : Stats.t;
}

type mode = [ `Run_to_completion | `First_exit ]

val make_frontier : strategy -> Ext.t Search.Frontier.t
(** Instantiate a strategy's frontier (shared with {!Parallel}). *)

val strategy_of_id : int -> strategy option
(** Map a [sys_guess_strategy] identifier to a strategy. *)

val run :
  ?mode:mode ->
  ?fuel_per_step:int ->
  ?max_extensions:int ->
  ?retry_budget:int ->
  ?strategy_override:strategy ->
  ?tier_stress:int ->
  ?spill_threshold:int ->
  ?on_stop:(Os.Libos.t -> Os.Libos.stop -> unit) ->
  ?probe:Record.Probe.t ->
  Os.Libos.t ->
  result
(** Drive a booted machine to completion.  [fuel_per_step] bounds guest
    instructions between scheduler events (default 50M); [max_extensions]
    aborts runaway searches; [strategy_override] ignores the id passed to
    [sys_guess_strategy] and forces the given strategy — how the E6 bench
    runs one program under many strategies.  [on_stop] observes every
    scheduler-visible stop before it is dispatched; the fuzz oracle uses it
    to exercise checkpoint round-trips at real scheduling points, so it may
    mutate the machine as long as the visible state is unchanged.

    Robustness: if the machine's physical memory is bounded
    ({!Mem.Phys_mem.capacity} > 0), the run installs a tiered {!Reclaim}
    store as the pressure handler — snapshot payloads are demoted to
    compressed dirty-page deltas under frame pressure and promoted back
    by decompress+apply when scheduled (replay remains the fallback past
    a truncation), so exploration completes within budgets smaller than
    its fault-free peak.  [tier_stress] forces the store on even with
    unbounded memory and hammers it: every [n]-th scheduler stop demotes
    every live payload, every 5[n]-th additionally truncates so the
    replay fallback runs too — the fuzz oracle's tier-stress pipeline.
    [spill_threshold] bounds in-memory compressed delta bytes; beyond it
    cold deltas spill to host temp files (tier 2).
    An exception escaping guest evaluation (an injected crash, a genuine
    out-of-frames) is retried from the path's origin up to [retry_budget]
    total attempts (default 3) before the path is quarantined as a
    [Path_killed] terminal; the search itself is never aborted by a crash
    inside a scope.

    [probe] observes every scheduler decision — evaluation outcomes,
    snapshot captures, restores with the delivered [rax] — which is
    exactly the nondeterministic input stream of a run.  The recorder
    ([Record.Recorder.probe]) turns it into a replay log; pair it with
    {!Record.Recorder.install} on the machine so the ordinary-syscall
    stream is logged too.  Recording composes only with the plain
    in-memory scheduler: a reclaim store rebuilds evicted payloads under
    fresh snapshot ids the log has never seen, so [probe] together with a
    bounded capacity or [tier_stress] raises [Invalid_argument]. *)

val run_image :
  ?mode:mode ->
  ?fuel_per_step:int ->
  ?max_extensions:int ->
  ?retry_budget:int ->
  ?capacity:int ->
  ?recycle:bool ->
  ?poison:bool ->
  ?strategy_override:strategy ->
  ?tier_stress:int ->
  ?spill_threshold:int ->
  ?files:(string * string) list ->
  ?stdin:string ->
  Isa.Asm.image ->
  result
(** Convenience: boot a fresh machine on fresh physical memory and [run].
    [capacity] bounds the physical frame budget (enables reclaim; see
    {!run}).  [recycle] (default true) controls eager frame reclamation:
    dead snapshots are released to the allocator's free list as the search
    retires them, and a snapshot's last restore adopts its frames instead
    of COWing them again.  With [recycle:false] the run reproduces the
    GC-only cost model exactly — results must be bit-identical either way.
    [poison] fills freed buffers with a marker byte to shake out
    use-after-free bugs in the release discipline (testing only). *)
