(** Externally-controlled search (§3.1, §3.2): clients hold opaque
    references to partial candidates and decide which extension of which
    candidate runs next.

    This implements the paper's multi-path incremental solver service: the
    guest is a single-path program; whenever it calls [sys_guess(n)] it
    publishes a choice point.  The service captures the lightweight
    snapshot, hands the client an opaque reference, and the client later
    resumes {e any} published reference with a chosen extension number (and
    optionally fresh stdin for the guest to read its next request from).
    Solving [p] then [p ∧ q] incrementally is: resume the reference
    obtained after solving [p].

    Candidates live in a tiered {!Reclaim} store: under memory pressure
    (a bounded physical memory, or an explicit {!demote_all}) their
    snapshot payloads are compressed into dirty-page deltas and promoted
    back by decompress+apply on the next resume; only an outright
    truncation ({!evict_all}) degrades reconstruction to deterministic
    replay — the immutability guarantee of {!resume} survives both. *)

type t

type ref_
(** Opaque reference to a published partial candidate. *)

type outcome =
  | Ready of { candidate : ref_; arity : int; output : string }
      (** the guest called [sys_guess(arity)] — a new choice point *)
  | Finished of { status : int; output : string }
  | Failed of { output : string }     (** the guest called [sys_guess_fail] *)
  | Crashed of string
      (** the guest was killed (fault, fuel/deadline, denied syscall) or an
          allocation failed mid-step.  The session's published candidates
          remain resumable either way — see {!last_crash_reason} to
          classify. *)

val boot :
  ?fuel_per_step:int ->
  ?capacity:int ->
  ?spill_threshold:int ->
  ?files:(string * string) list ->
  ?stdin:string ->
  ?phys:Mem.Phys_mem.t ->
  ?manage_pressure:bool ->
  ?dedup:bool ->
  ?account:int ->
  Isa.Asm.image ->
  t * outcome
(** Boot the guest and run it to its first choice point (or completion).
    [capacity] bounds the physical frame budget; under pressure the store
    demotes candidate payloads to compressed deltas rather than failing
    allocations.  [spill_threshold] bounds in-memory delta bytes; colder
    deltas spill to host temp files past it.

    The multi-tenant knobs: [phys] boots onto an {e existing} physical
    memory instead of creating a private one ([capacity] is then ignored —
    the pool already chose it); [manage_pressure:false] leaves the
    allocator's pressure handler alone so a pool can install its own
    cross-session policy (see [Core.Tenancy]); [dedup] maps image pages
    through the content-addressed table so same-image sessions share
    read-only frames; [account] charges the session's frames to a
    {!Mem.Phys_mem.fresh_account} for per-tenant budgeting. *)

val resume : t -> ref_ -> choice:int -> ?stdin:string -> unit -> outcome
(** Restore the candidate's snapshot (reconstructing it by replay if its
    payload was evicted), deliver [choice] as the guess result (and replace
    the guest's stdin if given), and run to the next event.  A reference
    stays valid until released and can be resumed any number of times —
    that is the immutability guarantee. *)

val release : t -> ref_ -> unit
(** Drop a published candidate: its snapshot payload is discarded (frames
    are reclaimed once no other candidate shares them), though a skeleton
    remains so descendants can still replay through it.  Resuming a
    released reference raises [Invalid_argument]. *)

val depth : t -> ref_ -> int

val pages : t -> ref_ -> int
(** Pages in the candidate's snapshot (reconstructs if evicted). *)

val live_candidates : t -> int
(** Published candidates not yet released. *)

val distinct_frames : t -> int
(** Physical frames backing all {e materialised} candidates together. *)

val evict_all : t -> int
(** Truncate every non-pinned candidate payload (worst case: the next
    resume of each falls back to replay); returns the number truncated. *)

val demote_all : t -> int
(** Demote every live candidate payload to its compressed delta; returns
    the number demoted. *)

val candidate_tier : t -> ref_ -> int
(** 0 live, 1 in-memory delta, 2 spilled, 3 truncated. *)

val materialised_candidates : t -> int
val payload_evictions : t -> int
val demotions : t -> int
val promotions : t -> int
val spills : t -> int
val spill_loads : t -> int
val replays : t -> int
val replay_fallbacks : t -> int

val machine : t -> Os.Libos.t
val phys : t -> Mem.Phys_mem.t

val last_crash_reason : t -> Os.Libos.reason option
(** After a [Crashed] outcome: [Some reason] when the guest was killed
    (e.g. [Fuel_exhausted] for a deadline trip), [None] when an allocation
    failed ([Out_of_frames] — capacity exhausted or an injected fault).
    Meaningless before the first crash. *)

val shed : t -> int
(** Demote this session's live candidate payloads until the allocator
    drops below its pressure watermark — allocation-free, safe inside a
    {!Mem.Phys_mem} pressure handler.  The hook a multi-tenant pool's
    two-level pressure policy is built on: shed the offender first, then
    siblings.  Returns the number demoted. *)

val flush_spills : t -> unit
(** Compress parked deltas and enforce the spill budget now (see
    {!Reclaim.flush_pending}) — lets a pool run codecs at idle points
    rather than on the resume path. *)

val teardown : t -> int
(** Retire the session: uninstall the pressure handler this session
    installed (if it manages one) and return its dedup-table references
    (see {!Mem.Addr_space.drop_dedup_refs}); reports how many were
    dropped.  Candidates become garbage once the caller drops [t]. *)
