module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg

type ref_ = Reclaim.handle

type t = {
  machine : Libos.t;
  store : Reclaim.t;
  (* the resume edge that leads to the next publish: (parent, choice,
     stdin).  [None] only before the first publish, whose snapshot is the
     pinned replay root. *)
  mutable pending : (ref_ * int * string option) option;
  (* the record the machine's state currently derives from; threaded as
     the parent of the next publish's capture so the store's explicit
     frame-free discipline sees the lineage *)
  mutable base_snap : Snapshot.t option;
  mutable depth_next : int;
  fuel_per_step : int;
  mutable marker : string list;
  manages_pressure : bool;
  mutable last_crash : Libos.reason option;
      (* set by the [Killed] arm of [advance]; [None] after a [Crashed]
         produced by allocation failure — how a pool distinguishes a
         deadline kill from a frame-budget trip *)
}

type outcome =
  | Ready of { candidate : ref_; arity : int; output : string }
  | Finished of { status : int; output : string }
  | Failed of { output : string }
  | Crashed of string

let harvest t =
  let cur = Libos.stdout_chunks t.machine in
  let rec collect acc l =
    if l == t.marker then acc
    else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
  in
  let chunks = collect [] cur in
  t.marker <- cur;
  String.concat "" chunks

let publish t =
  let snap =
    Snapshot.capture ~ids:(Reclaim.snapshot_ids t.store)
      ?parent:t.base_snap ~depth:t.depth_next t.machine
  in
  t.base_snap <- Some snap;
  match t.pending with
  | None -> Reclaim.add_root t.store snap
  | Some (parent, choice, stdin) ->
    Reclaim.add t.store ~parent ~choice ?stdin ~depth:t.depth_next snap

let rec advance_unguarded t =
  match Libos.run t.machine ~fuel:t.fuel_per_step with
  | Libos.Guess { n } ->
    let output = harvest t in
    let candidate = publish t in
    Ready { candidate; arity = n; output }
  | Libos.Guess_fail -> Failed { output = harvest t }
  | Libos.Exited { status } -> Finished { status; output = harvest t }
  | Libos.Guess_hint _ ->
    Cpu.set t.machine.cpu Reg.rax 0;
    advance_unguarded t
  | Libos.Guess_strategy _ ->
    (* A service-driven guest needs no internal strategy; accept and move
       on so the same binaries run under both drivers. *)
    Cpu.set t.machine.cpu Reg.rax 1;
    advance_unguarded t
  | Libos.Killed reason ->
    t.last_crash <- Some reason;
    Crashed (Format.asprintf "%a" Libos.pp_reason reason)

(* Contain allocation failure: a frame-budget trip mid-run (capacity
   exhausted, or an injected fault from [lib/inject]) crashes THIS session
   only.  Published candidates are untouched — their frames belong to
   retired generations and are never written in place, so whatever the
   half-finished step did to the current map cannot reach them; the next
   resume of any reference restores a snapshot and never looks at the
   machine state left behind here. *)
let advance t =
  try advance_unguarded t
  with Mem.Phys_mem.Out_of_frames { capacity; live } ->
    t.last_crash <- None;
    t.pending <- None;
    Crashed (Printf.sprintf "out of frames (capacity %d, live %d)" capacity live)

let boot ?(fuel_per_step = 50_000_000) ?capacity ?spill_threshold ?(files = [])
    ?stdin ?phys ?(manage_pressure = true) ?(dedup = false) ?(account = 0)
    image =
  let phys =
    match phys with
    | Some p -> p
    | None -> Mem.Phys_mem.create ?capacity ()
  in
  let machine = Libos.boot ~dedup ~account phys image in
  List.iter (fun (path, content) -> Libos.add_file machine ~path content) files;
  Option.iter (Libos.set_stdin machine) stdin;
  let store = Reclaim.create ~fuel_per_step ?spill_threshold machine in
  if manage_pressure && Mem.Phys_mem.capacity phys > 0 then
    Mem.Phys_mem.set_pressure_handler phys
      (Some (Reclaim.pressure_handler store));
  let t =
    { machine;
      store;
      pending = None;
      base_snap = None;
      depth_next = 0;
      fuel_per_step;
      marker = Libos.stdout_chunks machine;
      manages_pressure = manage_pressure;
      last_crash = None }
  in
  t, advance t

let resume t r ~choice ?stdin () =
  try
    let snap = Reclaim.get t.store r in
    Snapshot.restore t.machine snap;
    t.base_snap <- Some snap;
    t.pending <- Some (r, choice, stdin);
    t.depth_next <- Reclaim.depth t.store r + 1;
    t.marker <- Libos.stdout_chunks t.machine;
    Cpu.set t.machine.cpu Reg.rax choice;
    Option.iter (Libos.set_stdin t.machine) stdin;
    advance t
  with Mem.Phys_mem.Out_of_frames { capacity; live } ->
    (* Promotion of the target candidate itself ran out of frames.  The
       store keeps the entry (its delta or skeleton is intact), so the
       same reference can be resumed again once pressure relents. *)
    t.last_crash <- None;
    t.pending <- None;
    Crashed (Printf.sprintf "out of frames (capacity %d, live %d)" capacity live)

let release t r = Reclaim.release t.store r

let depth t r = Reclaim.depth t.store r
let pages t r = Snapshot.pages (Reclaim.get t.store r)
let live_candidates t = Reclaim.live_entries t.store

let distinct_frames t = Snapshot.distinct_frames (Reclaim.materialised t.store)

let evict_all t = Reclaim.evict_all t.store
let demote_all t = Reclaim.demote_all t.store
let candidate_tier t r = Reclaim.tier t.store r

let materialised_candidates t = Reclaim.materialised_count t.store
let payload_evictions t = Reclaim.evictions t.store
let demotions t = Reclaim.demotions t.store
let promotions t = Reclaim.promotions t.store
let spills t = Reclaim.spills t.store
let spill_loads t = Reclaim.spill_loads t.store
let replays t = Reclaim.replays t.store
let replay_fallbacks t = Reclaim.replay_fallbacks t.store

let machine t = t.machine
let phys t = Mem.Addr_space.phys t.machine.Libos.aspace
let last_crash_reason t = t.last_crash
let flush_spills t = Reclaim.flush_pending t.store

(* Allocation-free payload shedding for an external (pool-level) pressure
   handler: demote this session's candidates until the allocator is back
   below its watermark.  See [Reclaim.demote_under_pressure]. *)
let shed t = Reclaim.demote_under_pressure t.store

let teardown t =
  if t.manages_pressure && Mem.Phys_mem.capacity (phys t) > 0 then
    Mem.Phys_mem.set_pressure_handler (phys t) None;
  Mem.Addr_space.drop_dedup_refs t.machine.Libos.aspace
