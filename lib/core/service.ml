module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg

type ref_ = int

type t = {
  machine : Libos.t;
  ids : Snapshot.ids;
  table : (int, Snapshot.t) Hashtbl.t;
  mutable next_ref : int;
  mutable current : Snapshot.t option;
  fuel_per_step : int;
  mutable marker : string list;
}

type outcome =
  | Ready of { candidate : ref_; arity : int; output : string }
  | Finished of { status : int; output : string }
  | Failed of { output : string }
  | Crashed of string

let harvest t =
  let cur = Libos.stdout_chunks t.machine in
  let rec collect acc l =
    if l == t.marker then acc
    else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
  in
  let chunks = collect [] cur in
  t.marker <- cur;
  String.concat "" chunks

let publish t =
  let snap =
    Snapshot.capture ~ids:t.ids ?parent:t.current
      ~depth:(match t.current with None -> 0 | Some s -> s.Snapshot.depth + 1)
      t.machine
  in
  let id = t.next_ref in
  t.next_ref <- id + 1;
  Hashtbl.replace t.table id snap;
  t.current <- Some snap;
  id

let rec advance t =
  match Libos.run t.machine ~fuel:t.fuel_per_step with
  | Libos.Guess { n } ->
    let output = harvest t in
    let candidate = publish t in
    Ready { candidate; arity = n; output }
  | Libos.Guess_fail -> Failed { output = harvest t }
  | Libos.Exited { status } -> Finished { status; output = harvest t }
  | Libos.Guess_hint _ ->
    Cpu.set t.machine.cpu Reg.rax 0;
    advance t
  | Libos.Guess_strategy _ ->
    (* A service-driven guest needs no internal strategy; accept and move
       on so the same binaries run under both drivers. *)
    Cpu.set t.machine.cpu Reg.rax 1;
    advance t
  | Libos.Killed reason -> Crashed (Format.asprintf "%a" Libos.pp_reason reason)

let boot ?(fuel_per_step = 50_000_000) ?(files = []) ?stdin image =
  let phys = Mem.Phys_mem.create () in
  let machine = Libos.boot phys image in
  List.iter (fun (path, content) -> Libos.add_file machine ~path content) files;
  Option.iter (Libos.set_stdin machine) stdin;
  let t =
    { machine;
      ids = Snapshot.ids ();
      table = Hashtbl.create 64;
      next_ref = 0;
      current = None;
      fuel_per_step;
      marker = Libos.stdout_chunks machine }
  in
  t, advance t

let find t r =
  match Hashtbl.find_opt t.table r with
  | Some snap -> snap
  | None -> invalid_arg (Printf.sprintf "Service: unknown candidate reference %d" r)

let resume t r ~choice ?stdin () =
  let snap = find t r in
  Snapshot.restore t.machine snap;
  t.current <- Some snap;
  t.marker <- Libos.stdout_chunks t.machine;
  Cpu.set t.machine.cpu Reg.rax choice;
  Option.iter (Libos.set_stdin t.machine) stdin;
  advance t

let release t r = Hashtbl.remove t.table r

let depth t r = (find t r).Snapshot.depth
let pages t r = Snapshot.pages (find t r)
let live_candidates t = Hashtbl.length t.table

let distinct_frames t =
  Snapshot.distinct_frames (Hashtbl.fold (fun _ s acc -> s :: acc) t.table [])

let machine t = t.machine
