module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg

type ref_ = Reclaim.handle

type t = {
  machine : Libos.t;
  store : Reclaim.t;
  (* the resume edge that leads to the next publish: (parent, choice,
     stdin).  [None] only before the first publish, whose snapshot is the
     pinned replay root. *)
  mutable pending : (ref_ * int * string option) option;
  (* the record the machine's state currently derives from; threaded as
     the parent of the next publish's capture so the store's explicit
     frame-free discipline sees the lineage *)
  mutable base_snap : Snapshot.t option;
  mutable depth_next : int;
  fuel_per_step : int;
  mutable marker : string list;
}

type outcome =
  | Ready of { candidate : ref_; arity : int; output : string }
  | Finished of { status : int; output : string }
  | Failed of { output : string }
  | Crashed of string

let harvest t =
  let cur = Libos.stdout_chunks t.machine in
  let rec collect acc l =
    if l == t.marker then acc
    else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
  in
  let chunks = collect [] cur in
  t.marker <- cur;
  String.concat "" chunks

let publish t =
  let snap =
    Snapshot.capture ~ids:(Reclaim.snapshot_ids t.store)
      ?parent:t.base_snap ~depth:t.depth_next t.machine
  in
  t.base_snap <- Some snap;
  match t.pending with
  | None -> Reclaim.add_root t.store snap
  | Some (parent, choice, stdin) ->
    Reclaim.add t.store ~parent ~choice ?stdin ~depth:t.depth_next snap

let rec advance t =
  match Libos.run t.machine ~fuel:t.fuel_per_step with
  | Libos.Guess { n } ->
    let output = harvest t in
    let candidate = publish t in
    Ready { candidate; arity = n; output }
  | Libos.Guess_fail -> Failed { output = harvest t }
  | Libos.Exited { status } -> Finished { status; output = harvest t }
  | Libos.Guess_hint _ ->
    Cpu.set t.machine.cpu Reg.rax 0;
    advance t
  | Libos.Guess_strategy _ ->
    (* A service-driven guest needs no internal strategy; accept and move
       on so the same binaries run under both drivers. *)
    Cpu.set t.machine.cpu Reg.rax 1;
    advance t
  | Libos.Killed reason -> Crashed (Format.asprintf "%a" Libos.pp_reason reason)

let boot ?(fuel_per_step = 50_000_000) ?capacity ?spill_threshold ?(files = [])
    ?stdin image =
  let phys = Mem.Phys_mem.create ?capacity () in
  let machine = Libos.boot phys image in
  List.iter (fun (path, content) -> Libos.add_file machine ~path content) files;
  Option.iter (Libos.set_stdin machine) stdin;
  let store = Reclaim.create ~fuel_per_step ?spill_threshold machine in
  if Mem.Phys_mem.capacity phys > 0 then
    Mem.Phys_mem.set_pressure_handler phys
      (Some (Reclaim.pressure_handler store));
  let t =
    { machine;
      store;
      pending = None;
      base_snap = None;
      depth_next = 0;
      fuel_per_step;
      marker = Libos.stdout_chunks machine }
  in
  t, advance t

let resume t r ~choice ?stdin () =
  let snap = Reclaim.get t.store r in
  Snapshot.restore t.machine snap;
  t.base_snap <- Some snap;
  t.pending <- Some (r, choice, stdin);
  t.depth_next <- Reclaim.depth t.store r + 1;
  t.marker <- Libos.stdout_chunks t.machine;
  Cpu.set t.machine.cpu Reg.rax choice;
  Option.iter (Libos.set_stdin t.machine) stdin;
  advance t

let release t r = Reclaim.release t.store r

let depth t r = Reclaim.depth t.store r
let pages t r = Snapshot.pages (Reclaim.get t.store r)
let live_candidates t = Reclaim.live_entries t.store

let distinct_frames t = Snapshot.distinct_frames (Reclaim.materialised t.store)

let evict_all t = Reclaim.evict_all t.store
let demote_all t = Reclaim.demote_all t.store
let candidate_tier t r = Reclaim.tier t.store r

let materialised_candidates t = Reclaim.materialised_count t.store
let payload_evictions t = Reclaim.evictions t.store
let demotions t = Reclaim.demotions t.store
let promotions t = Reclaim.promotions t.store
let spills t = Reclaim.spills t.store
let spill_loads t = Reclaim.spill_loads t.store
let replays t = Reclaim.replays t.store
let replay_fallbacks t = Reclaim.replay_fallbacks t.store

let machine t = t.machine
