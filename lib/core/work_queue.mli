(** A sharded work-stealing queue over strategy frontiers.

    This is the shared search graph of Figure 2 for the true-multicore
    backend of {!Parallel}.  Each worker domain owns one {e shard} — a
    plain sequential {!Search.Frontier} behind its own mutex — and in
    steady state touches nothing else: push extensions into your shard,
    pop from your shard.  Only when a shard runs dry does its owner steal,
    migrating {e half} the victim's items in one lock acquisition
    (steal-half batching, Cilk-style), so a deep subtree is split a
    logarithmic number of times instead of leaking one leaf per steal.

    The queue also implements distributed termination: one atomic counter
    tracks {e outstanding paths} (queued plus in flight), so {!take}
    returns [None] exactly when every shard is empty {e and} no worker is
    still evaluating a path that could push more work.  Wakeups are
    targeted: a push signals at most one sleeping worker per item made
    available, never the whole fleet. *)

type 'a t

val create :
  ?shards:int ->
  ?initial_paths:int ->
  meta_of:('a -> Search.Frontier.meta) ->
  (unit -> 'a Search.Frontier.t) ->
  'a t
(** [create ~shards ~meta_of make_frontier] builds [shards] (default 1)
    independent frontiers by calling [make_frontier] once per shard.
    [meta_of] recomputes an item's scheduling metadata when a steal
    migrates it into another shard's frontier.  [initial_paths] (default
    0) pre-counts paths already being evaluated before any {!take} — the
    parallel explorer starts with 1 for the root path its first worker
    carries natively. *)

val shard_count : 'a t -> int

val push_batch : 'a t -> dom:int -> (Search.Frontier.meta * 'a) list -> unit
(** Push a batch into shard [dom] (the caller's own shard).  The batch
    length is computed once; at most one sleeping worker is signalled per
    item actually enqueued.  Items evicted by a bounded strategy surface
    via {!drain_dropped}. *)

val take : 'a t -> dom:int -> 'a option
(** Pop the next extension for worker [dom]: its own shard first, then by
    stealing half of the first non-empty sibling shard.  Blocks while all
    shards are empty but paths are still in flight.  [None] means the
    search is over: the scope is exhausted, or {!stop} was called.  A
    successful take keeps the caller counted as outstanding until it calls
    {!finish_path}. *)

val finish_path : 'a t -> unit
(** The path taken earlier has been fully handled (its extensions, if any,
    were pushed first).  Push-then-finish ordering matters: finishing
    first could let the queue report termination while children are
    pending. *)

val drain_dropped : 'a t -> 'a list
(** Items evicted by memory-bounded strategies since the last drain, from
    any shard.  They have already left the termination accounting; the
    scheduler drains them to release the snapshots they reference.  Any
    worker may drain; each item surfaces exactly once. *)

val stop : 'a t -> unit
(** Make every current and future {!take} return [None] (first-exit mode,
    aborts). *)

val stopped : 'a t -> bool

val length : 'a t -> int
(** Items queued across all shards. *)

val shard_length : 'a t -> int -> int
(** Items queued in one shard. *)

val pushed : 'a t -> int
(** Total extensions ever pushed. *)

val evicted : 'a t -> int
(** Extensions dropped by memory-bounded strategies. *)

val steal_batches : 'a t -> int
(** Steal operations that migrated at least one item. *)

val stolen_items : 'a t -> int
(** Items migrated by steals (including the one the thief consumed). *)

val max_length : 'a t -> int
(** Peak queued length, sampled on both push and take. *)
