(** A mutex-protected work-sharing wrapper around a strategy frontier.

    This is the shared search graph of Figure 2 for the true-multicore
    backend of {!Parallel}: worker domains push each guess's extensions as
    one batch and block in {!take} until the strategy hands them the next
    one.  The wrapper also implements distributed termination: it counts
    {e paths in flight} (items taken but not yet finished), so {!take}
    returns [None] exactly when the frontier is empty {e and} no worker is
    still evaluating a path that could push more work.

    All operations lock one mutex; the frontier itself stays the plain
    sequential value from {!Search.Frontier}.  Contention is low by
    construction — workers interact with the queue once per scheduling
    event (a guess or a terminal), not per instruction. *)

type 'a t

val create : ?initial_paths:int -> 'a Search.Frontier.t -> 'a t
(** Wrap a frontier.  [initial_paths] (default 0) pre-counts paths already
    being evaluated before any {!take} — the parallel explorer starts with
    1 for the root path its first worker carries natively. *)

val push_batch : 'a t -> (Search.Frontier.meta * 'a) list -> unit

val take : 'a t -> 'a option
(** Pop the next extension, blocking while the frontier is empty but paths
    are still in flight.  [None] means the search is over: the scope is
    exhausted, or {!stop} was called.  A successful take counts the caller
    as in flight until it calls {!finish_path}. *)

val finish_path : 'a t -> unit
(** The path taken earlier has been fully handled (its extensions, if any,
    were pushed first).  Push-then-finish ordering matters: finishing first
    could let the queue report termination while children are pending. *)

val stop : 'a t -> unit
(** Make every current and future {!take} return [None] (first-exit mode,
    aborts). *)

val stopped : 'a t -> bool

val length : 'a t -> int

val pushed : 'a t -> int
(** Total extensions ever pushed. *)

val evicted : 'a t -> int
(** Extensions dropped by memory-bounded strategies. *)

val max_length : 'a t -> int
(** Peak frontier length. *)
