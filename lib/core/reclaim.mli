(** Snapshot eviction with replay-based reconstruction (§5).

    The paper argues snapshots stay viable at scale because the system can
    {e discard} them under memory pressure and rebuild them later by
    re-executing from an ancestor.  This module is that layer: a store of
    published snapshots where each entry permanently keeps a skeleton —
    [(parent handle, choice, stdin, depth)], a few words — while the
    payload (the snapshot, whose page map pins physical frames) can be
    evicted at any time.

    {!get} on an evicted entry walks up to the nearest materialised
    ancestor and deterministically re-executes each edge: restore the
    ancestor, deliver the recorded choice in [rax] (and the recorded stdin,
    if any), run to the next [sys_guess], capture.  Guest output produced
    during replay is discarded (drivers reset their harvest marker after
    the restore that follows a [get]) and the instruction / memory-metric
    cost is accumulated separately ({!replayed_instructions},
    {!suppressed_mem}) so drivers can report fault-free figures.

    Roots are pinned: they are the replay base of last resort.  Released
    entries drop their payload and refuse {!get}, but keep their skeleton
    — a descendant's replay may pass through them. *)

type handle = int

exception Replay_diverged of string
(** A replay reached a terminal where the original run published a choice
    point — impossible for deterministic guests; indicates the machine
    diverged (e.g. external state changed between capture and replay). *)

type t

val create : ?fuel_per_step:int -> Os.Libos.t -> t
(** The machine is the replay vehicle: reconstruction restores and re-runs
    on it.  Callers must treat machine state as clobbered across {!get}
    (every driver restores a snapshot right after, so this is free). *)

val add_root : t -> Snapshot.t -> handle
(** Register a pinned root: never evicted, the base of every replay. *)

val add :
  t -> parent:handle -> choice:int -> ?stdin:string -> depth:int ->
  Snapshot.t -> handle
(** Register a snapshot captured at the first [sys_guess] reached after
    restoring [parent] and delivering [choice] (and [stdin], if given). *)

val get : t -> handle -> Snapshot.t
(** The entry's snapshot, reconstructing it by replay if evicted.
    @raise Invalid_argument on an unknown or released handle.
    @raise Replay_diverged if re-execution does not reach a choice point. *)

val depth : t -> handle -> int
val is_materialised : t -> handle -> bool
val is_released : t -> handle -> bool

val release : t -> handle -> unit
(** Drop the payload and refuse future {!get}s; the skeleton stays so
    descendants can still replay through this entry. *)

val evict : t -> handle -> bool
(** Drop one payload; [false] if pinned or already evicted. *)

val evict_all : t -> int
(** Evict every evictable payload (testing / introspection); returns the
    number evicted. *)

val evict_under_pressure : t -> int
(** The pressure policy: evict half the evictable payloads (at least one),
    deepest first, least-recently-resumed first among equals.  Returns the
    number evicted.  Safe to call from a {!Mem.Phys_mem} pressure handler:
    it only drops references, never allocates or replays. *)

val pressure_handler : t -> unit -> unit
(** [evict_under_pressure] packaged for {!Mem.Phys_mem.set_pressure_handler}. *)

val snapshot_ids : t -> Snapshot.ids
(** The id allocator replays capture under; drivers that capture into the
    store themselves must use it too, so ids stay unique per store. *)

val materialised : t -> Snapshot.t list

val live_entries : t -> int
(** Entries not released. *)

val materialised_count : t -> int

val evictions : t -> int

val replays : t -> int
(** Edges re-executed. *)

val replayed_instructions : t -> int
val suppressed_mem : t -> Mem.Mem_metrics.t
(** Memory-metric deltas incurred by replays, to subtract from reports. *)
