(** Tiered snapshot storage: evict by compressing deltas, not by
    forgetting (§5).

    The paper argues snapshots stay viable at scale because the system can
    shed them under memory pressure and rebuild them later.  This module
    is that layer, as a store of published snapshots whose payloads
    degrade through tiers instead of vanishing:

    - {e tier 0} — the live snapshot; its page map pins physical frames.
    - {e tier 1} — a compressed dirty-page delta against the nearest
      still-live ancestor (held in host memory, accounted via
      {!Mem.Phys_mem.note_delta_bytes}).  {!demote} moves 0 → 1 in two
      steps: the pressure-handler half only copies page bytes out
      (allocation-free with respect to frames, and fast), and compression
      is deferred to {!flush_pending} — run by {!get} only on stores with
      a spill budget to enforce, so the codec stays off the scheduler's
      pop path.
    - {e tier 2} — the compressed delta spilled to a host temp file, for
      stores given a [spill_threshold] budget on in-memory delta bytes.
    - {e tier 3} — truncated: payload gone, skeleton kept.  Only
      {!evict} produces this state now; it is no longer the pressure
      policy, just the fallback the store can always recover from.

    {!get} on a demoted entry {e promotes}: materialise the delta's base
    (recursively), restore its page map, apply the byte delta, load the
    saved registers and OS state, capture — zero guest instructions.
    Only a truncated entry falls back to deterministic replay of its edge
    from the parent: restore, deliver the recorded choice in [rax] (and
    the recorded stdin, if any), run to the next [sys_guess], capture.
    Guest output produced during reconstruction is discarded (drivers
    reset their harvest marker after the restore that follows a [get])
    and the replay instruction / memory-metric cost is accumulated
    separately ({!replayed_instructions}, {!suppressed_mem}) so drivers
    can report fault-free figures.

    Roots are pinned: they may demote to a tier-1 full image but never
    spill and never truncate, so reconstruction always bottoms out.
    Released entries drop their payload and refuse {!get}, but keep their
    skeleton — a descendant's replay may pass through them. *)

type handle = int

exception Replay_diverged of string
(** A replay reached a terminal where the original run published a choice
    point — impossible for deterministic guests; indicates the machine
    diverged (e.g. external state changed between capture and replay). *)

type t

val create : ?fuel_per_step:int -> ?spill_threshold:int -> Os.Libos.t -> t
(** The machine is the reconstruction vehicle: promotion and replay both
    restore onto it.  Callers must treat machine state as clobbered
    across {!get} (every driver restores a snapshot right after, so this
    is free).  [spill_threshold] (default [max_int] = never spill) bounds
    the compressed delta bytes held in host memory: beyond it,
    {!flush_pending} spills the coldest packed deltas to disk. *)

val add_root : t -> Snapshot.t -> handle
(** Register a pinned root: never spilled or truncated, the
    reconstruction base of last resort. *)

val add :
  t -> parent:handle -> choice:int -> ?stdin:string -> depth:int ->
  Snapshot.t -> handle
(** Register a snapshot captured at the first [sys_guess] reached after
    restoring [parent] and delivering [choice] (and [stdin], if given). *)

val get : t -> handle -> Snapshot.t
(** The entry's snapshot, reconstructed if not live: promotion
    (decompress + apply) for demoted entries, replay only where the chain
    was truncated.  Runs {!flush_pending} first when the store has a
    [spill_threshold] to enforce; otherwise pending raw deltas stay raw —
    their frames are already free, and packing them here would put the
    codec on the scheduler's critical path.
    @raise Invalid_argument on an unknown or released handle.
    @raise Replay_diverged if a replay does not reach a choice point. *)

val depth : t -> handle -> int

val tier : t -> handle -> int
(** 0 live, 1 in-memory delta, 2 spilled delta, 3 truncated. *)

val is_materialised : t -> handle -> bool
(** [tier t h = 0]. *)

val is_released : t -> handle -> bool

val release : t -> handle -> unit
(** Drop the payload and refuse future {!get}s; the skeleton stays so
    descendants can still replay through this entry. *)

(** {1 Tier transitions} *)

val demote : t -> handle -> bool
(** Tier 0 → 1: replace the live snapshot with its dirty-page delta
    against the nearest still-live ancestor (a full image when none
    exists).  The delta is left uncompressed until the next
    {!flush_pending}; the frames the snapshot pinned become unreachable.
    [false] if the payload is not live.  Safe inside a {!Mem.Phys_mem}
    pressure handler: reads frame bytes, allocates no frames, never runs
    guest code. *)

val demote_all : t -> int
(** Demote every live payload, deepest first (so every delta is against a
    still-live parent), pinned roots included; returns the number
    demoted. *)

val flush_pending : t -> unit
(** Compress deltas parked by {!demote}, then spill the coldest packed
    deltas while in-memory delta bytes exceed the [spill_threshold].
    Run by {!get} on stores with a spill budget; exposed for drivers that
    want compression to happen at a quiet point of their own choosing. *)

val spill : t -> handle -> bool
(** Tier 1 → 2: write the packed delta to a host temp file and drop the
    in-memory copy.  [false] unless the entry holds a packed delta and is
    not pinned. *)

val evict : t -> handle -> bool
(** Truncate: drop the payload entirely (tier 3); [false] if pinned or
    already truncated.  Reconstruction degrades to replay for this
    entry. *)

val evict_all : t -> int
(** Truncate every non-pinned payload (testing / worst-case
    introspection); returns the number truncated. *)

val demote_under_pressure : t -> int
(** The pressure policy: demote live non-pinned payloads — deepest first,
    least-recently-resumed first among equals — until the allocator's
    live count drops back below its watermark (at least one victim; every
    victim when the explicit frees never clear the mark).  Returns the
    number demoted.  Safe to call from a {!Mem.Phys_mem} pressure
    handler: it copies bytes out of frames but never allocates frames,
    compresses, or replays. *)

val pressure_handler : t -> unit -> unit
(** [demote_under_pressure] packaged for
    {!Mem.Phys_mem.set_pressure_handler}. *)

val snapshot_ids : t -> Snapshot.ids
(** The id allocator reconstruction captures under; drivers that capture
    into the store themselves must use it too, so ids stay unique per
    store. *)

val materialised : t -> Snapshot.t list
(** Live (tier-0) snapshots only. *)

val live_entries : t -> int
(** Entries not released. *)

val materialised_count : t -> int

(** {1 Counters} *)

val evictions : t -> int
(** Truncations (tier 3), not demotions. *)

val demotions : t -> int
val promotions : t -> int

val spills : t -> int
val spill_loads : t -> int

val replays : t -> int
(** Edges re-executed. *)

val replay_fallbacks : t -> int
(** {!get}s that could not be served by promotion alone because a delta
    chain was truncated under them. *)

val replayed_instructions : t -> int
val suppressed_mem : t -> Mem.Mem_metrics.t
(** Memory-metric deltas incurred by reconstruction, to subtract from
    reports. *)
