(** The lightweight immutable execution snapshot — the paper's central
    abstraction (§3.1).

    A snapshot is the combination of an immutable register file, an
    immutable (COW) address space, and immutable OS state including the
    logical copy of open files.  Capture is O(1): the register file is one
    small array copy, the other two are persistent-value grabs.  Each
    snapshot records its parent, forming the partial-candidate tree whose
    structural sharing is what makes the encoding space-efficient. *)

type t = private {
  id : int;
  regs : Vcpu.Cpu.saved;
  mem : Mem.Addr_space.snapshot;
  os : Os.Libos.os_state;
  parent : t option;
  depth : int;  (** guesses from the exploration root *)
}

type ids
(** A per-run snapshot-id allocator.  Every exploration run creates its
    own ([Explorer.run], [Parallel.run], [Service.boot]), so concurrent
    runs never share a counter; allocation is atomic, so captures racing
    across domains within one run still get distinct ids. *)

val ids : unit -> ids

val capture : ids:ids -> ?parent:t -> depth:int -> Os.Libos.t -> t
val restore : Os.Libos.t -> t -> unit

val pages : t -> int
(** Logical pages mapped in the snapshot's address space. *)

val distinct_frames : t list -> int
(** Physical frames backing the union of the snapshots: the space-accounting
    measure (shared pages count once). *)

val delta_pages : t -> t -> int
(** Pages whose backing differs between two snapshots of the same lineage. *)

val lineage : t -> t list
(** The snapshot and its ancestors, root last. *)
