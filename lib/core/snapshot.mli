(** The lightweight immutable execution snapshot — the paper's central
    abstraction (§3.1).

    A snapshot is the combination of an immutable register file, an
    immutable (COW) address space, and immutable OS state including the
    logical copy of open files.  Capture is O(1): the register file is one
    small array copy, the other two are persistent-value grabs.  Each
    snapshot records its parent, forming the partial-candidate tree whose
    structural sharing is what makes the encoding space-efficient. *)

type t = private {
  id : int;
  regs : Vcpu.Cpu.saved;
  mem : Mem.Addr_space.snapshot;
  os : Os.Libos.os_state;
  parent : t option;
  depth : int;  (** guesses from the exploration root *)
  mutable ext_refs : int;
      (** frontier extensions (plus pins) that may still restore this *)
  mutable child_refs : int;
      (** live children whose maps share this snapshot's frames *)
  mutable freed : bool;    (** private frames returned to the allocator *)
  mutable adopted : bool;  (** restored via {!restore_adopting}; must never
                               be restored again *)
}

type ids
(** A per-run snapshot-id allocator.  Every exploration run creates its
    own ([Explorer.run], [Parallel.run], [Service.boot]), so concurrent
    runs never share a counter; allocation is atomic, so captures racing
    across domains within one run still get distinct ids. *)

val ids : unit -> ids

val capture : ids:ids -> ?parent:t -> depth:int -> Os.Libos.t -> t
(** Capturing with a parent also counts this snapshot in the parent's
    [child_refs] — part of the release discipline below. *)

val restore : Os.Libos.t -> t -> unit

(** {1 Explicit release}

    Schedulers that want allocation-free backtracking (rather than waiting
    for the GC) maintain two reference counts per snapshot: [ext_refs],
    raised by {!retain} once per frontier extension pushed and lowered by
    {!release_ext} when that extension restores away (or is evicted
    unexplored); and [child_refs], maintained by {!capture}.  When both
    reach zero the snapshot is dead: its delta-vs-parent frames go back to
    {!Mem.Phys_mem}'s free list, and death cascades to the parent if this
    child was the last thing keeping it alive.  Roots are never freed.
    The whole discipline is a no-op when the physical memory was created
    with [recycle:false]. *)

val retain : ?n:int -> t -> unit
val release_ext : phys:Mem.Phys_mem.t -> t -> unit

val sole_extension : t -> bool
(** The snapshot is being restored for the last time: one extension ref
    left, no live children, and a parent to compute the delta against —
    the precondition for {!restore_adopting}. *)

val restore_adopting : Os.Libos.t -> t -> unit
(** Restore knowing this is the snapshot's last restore (see
    {!sole_extension}): its delta-vs-parent frames are adopted into the
    current generation and written in place instead of COW'd again.
    Marks the snapshot {!adopted}; restoring it again afterwards would
    observe the adopter's writes. *)

val adopted : t -> bool

val free_delta : phys:Mem.Phys_mem.t -> parent:t -> t -> int
(** Directly free this snapshot's frames beyond [parent] (for stores that
    track lineage outside the [parent] field, e.g. {!Reclaim}).  The
    caller asserts the same death conditions as {!release_ext}.  Idempotent
    via the [freed] flag; returns the number of frames freed. *)

val pages : t -> int
(** Logical pages mapped in the snapshot's address space. *)

val distinct_frames : t list -> int
(** Physical frames backing the union of the snapshots: the space-accounting
    measure (shared pages count once). *)

val delta_pages : t -> t -> int
(** Pages whose backing differs between two snapshots of the same lineage. *)

val lineage : t -> t list
(** The snapshot and its ancestors, root last. *)
