(** Multi-tenant snapshot service: N independent {!Service}-style sessions
    multiplexed over one shared physical frame pool.

    This is the pool behind the paper's "externally-controlled search"
    story at scale: many clients hold candidate references into their own
    sessions, all sessions draw frames from a single bounded {!Mem.Phys_mem},
    and same-image sessions share read-only code pages through the
    content-addressed dedup table (COW on first divergence — the frame-
    generation discipline that makes snapshots sound makes the sharing
    invisible).

    Robustness contract: a misbehaving tenant — guest crash, deadline or
    fuel-budget overrun, frame-budget blowout, injected allocation fault —
    is contained to its own session.  Pressure demotes the offender's
    candidates first (through the tiered {!Reclaim} store), then the rest
    of the pool least-recently-scheduled first; admission control queues or
    rejects new boots past the high watermark instead of letting them fail
    allocations mid-resume; scheduling is round-robin, one resume per
    tenant per round, under a per-resume instruction deadline.  Every
    other tenant's candidates remain bit-identical resumable throughout. *)

type t

type id = int
(** Tenant handle; dense from 0 in admission order. *)

type state =
  | Running
  | Crashed of string   (** guest killed or allocation failed mid-step *)
  | Evicted of string   (** pool policy: fuel or frame budget exceeded *)
  | Retired             (** explicit {!kill} *)

type admission =
  | Admitted of id * Service.outcome
      (** booted to its first choice point (or terminal) *)
  | Queued of int  (** admission deferred; position in the boot queue *)
  | Rejected       (** boot queue full *)

val create :
  ?capacity:int ->
  ?spill_threshold:int ->
  ?fuel_per_step:int ->
  ?frame_budget:int ->
  ?fuel_budget:int ->
  ?deadline:int ->
  ?max_tenants:int ->
  ?queue_limit:int ->
  ?dedup:bool ->
  unit -> t
(** [capacity] bounds the shared frame pool (0 = unbounded; live tracking
    is enabled regardless so per-tenant accounting works).  [frame_budget]
    bounds any one tenant's live frames (0 = none): an over-budget tenant
    is demoted to compressed deltas and evicted only if still over.
    [fuel_budget] bounds a tenant's cumulative retired instructions
    (0 = none).  [deadline] bounds a single resume (0 = none) through the
    same fuel mechanism as the guest-visible [sys_timeout]; a trip is a
    deadline kill.  [max_tenants] caps concurrent running sessions
    (0 = none).  [queue_limit] bounds the admission queue (beyond it boots
    are rejected outright).  [dedup] (default true) routes image pages
    through the content-addressed table. *)

val boot :
  ?files:(string * string) list -> ?stdin:string -> t -> Isa.Asm.image ->
  admission
(** Admit, queue, or reject a new session.  Admission is refused while the
    pool is at the tenant cap or above the allocator's pressure watermark —
    queued boots are retried by {!pump} with exponential backoff. *)

val pump : t -> (id * Service.outcome) list
(** Retry queued boots, oldest first, admitting while the pool has room;
    returns the sessions admitted by this call.  FIFO: the head blocks the
    queue until it is due and admissible. *)

val post : t -> id -> Service.ref_ -> choice:int -> ?stdin:string -> unit -> bool
(** Enqueue a resume request for the tenant.  [false] if the tenant is no
    longer running.  Requests are served by {!step}, round-robin across
    tenants. *)

val step : t -> (id * Service.outcome) option
(** Serve one request: pop the next tenant in round-robin order, run one
    of its queued resumes under the pool deadline, police budgets, and
    return the outcome.  [None] when no tenant has work queued.  A tenant
    with more requests re-enters the round at the back — one slot per
    round is the fairness guarantee. *)

val next_tenant : t -> id option
(** The tenant {!step} would serve next — lets tests and benches aim an
    injected fault at a specific victim's next allocation. *)

val kill : t -> id -> unit
(** Explicitly retire a tenant: clear its queued requests, demote its
    candidate payloads out of the frame pool, and return its dedup-table
    references.  Idempotent on non-running tenants. *)

(** {1 Introspection} *)

val phys : t -> Mem.Phys_mem.t
val service : t -> id -> Service.t
(** The underlying session, for direct candidate inspection in tests.
    Resumes should go through {!post}/{!step} so pressure attribution and
    budget policing see them. *)

val state : t -> id -> state option
val tenant_count : t -> int
val live_tenants : t -> int

val tenant_frames : t -> id -> int
(** Live frames currently charged to the tenant's account. *)

val resumes_of : t -> id -> int
val pending_boots : t -> int

val dedup_ratio : t -> float
(** Outstanding dedup references per distinct hash-consed frame — the
    sharing multiplier (1.0 when the table is empty). *)

(** {1 Counters} *)

val admits : t -> int
val rejects : t -> int
val queued_boots : t -> int
val deadline_kills : t -> int
val budget_evictions : t -> int
val fuel_evictions : t -> int
val crashes : t -> int

val pressure_level2 : t -> int
(** Pressure events where shedding the offender alone did not clear the
    watermark and the pool fell back to LRU shedding across tenants. *)
