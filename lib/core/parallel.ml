module Libos = Os.Libos
module Cpu = Vcpu.Cpu
module Reg = Isa.Reg
module As = Mem.Addr_space
module Frontier = Search.Frontier

type backend = [ `Cooperative | `Domains ]

type config = {
  workers : int;
  quantum : int;
  strategy : Explorer.strategy;
  mode : [ `Run_to_completion | `First_exit ];
  max_extensions : int;
  backend : backend;
  retry_budget : int;
  faults : Inject.plan option;
}

let default_config =
  { workers = 4;
    quantum = 20_000;
    strategy = `Dfs;
    mode = `Run_to_completion;
    max_extensions = max_int;
    backend = `Cooperative;
    retry_budget = 3;
    faults = None }

type result = {
  outcome : Explorer.outcome;
  transcript : string;
  terminals : Explorer.terminal list;
  rounds : int;
  busy_rounds : int array;
  stats : Stats.t;
  domain_metrics : Obs.Metrics.t array;
}

exception Abort of string
exception Done of Explorer.outcome

(* Resolve the strategy exactly like the cooperative scheduler: the guest's
   id wins while the config keeps the default. *)
let resolve_strategy config id =
  match config.strategy with
  | `Dfs -> (
    match Explorer.strategy_of_id id with
    | Some s -> s
    | None -> raise (Abort (Printf.sprintf "unknown strategy id %d" id)))
  | other -> other

let arm_faults config =
  match config.faults with Some p -> Inject.arm p | None -> Inject.none

let quarantine_message e budget =
  Printf.sprintf "crash: %s (quarantined after %d attempts)"
    (Printexc.to_string e) budget

(* ------------------------------------------------------------------ *)
(* Cooperative backend: deterministic round-robin over one Phys_mem.  *)
(* ------------------------------------------------------------------ *)

type worker = {
  machine : Libos.t;
  mutable busy : bool;
  mutable marker : string list;      (* stdout harvest point *)
  mutable pending_hint : int;
  mutable depth : int;
  mutable snap : Snapshot.t option;  (* candidate this path descends from *)
  mutable origin : Ext.t option;     (* the popped extension: restart point
                                        for crash recovery (None = the
                                        scope-opening root path) *)
  mutable retries : int;
  mutable epoch : int;               (* this worker's aspace epoch right
                                        after its last restore; see
                                        [Addr_space.discard_segment] *)
}

let run_cooperative ~(config : config) (image : Isa.Asm.image) =
  let ids = Snapshot.ids () in
  let phys = Mem.Phys_mem.create () in
  let inj = arm_faults config in
  (* Eager snapshot release, as in [Explorer.run].  Disabled under fault
     injection: chaos runs crash paths at arbitrary points and the extra
     invariant surface buys nothing there. *)
  let recycle_snaps = config.faults = None && Mem.Phys_mem.recycling phys in
  let stats = Stats.create () in
  let mem_before = Mem.Mem_metrics.copy (Mem.Phys_mem.metrics phys) in
  let workers =
    Array.init config.workers (fun _ ->
        let machine = Libos.boot phys image in
        { machine;
          busy = false;
          marker = Libos.stdout_chunks machine;
          pending_hint = 0;
          depth = 0;
          snap = None;
          origin = None;
          retries = 0;
          epoch = -1 })
  in
  let transcript = Buffer.create 256 in
  let terminals = ref [] in
  let rounds = ref 0 in
  let busy_rounds = Array.make config.workers 0 in

  let harvest w =
    let cur = Libos.stdout_chunks w.machine in
    let rec collect acc l =
      if l == w.marker then acc
      else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    w.marker <- cur;
    let text = String.concat "" chunks in
    Buffer.add_string transcript text;
    text
  in
  let record kind output depth =
    terminals := { Explorer.kind; output; depth } :: !terminals
  in

  (* Same extent accounting as [Explorer.run]'s [track_extents]: live
     snapshots are the frontier plus the lineages of every busy path. *)
  let track_extents frontier =
    let frontier_len = frontier.Frontier.length () in
    stats.Stats.max_frontier <- max stats.Stats.max_frontier frontier_len;
    let lineage =
      Array.fold_left
        (fun acc w ->
          if not w.busy then acc
          else
            match w.snap with
            | None -> acc
            | Some s -> acc + List.length (Snapshot.lineage s))
        0 workers
    in
    stats.Stats.max_live_snapshots <-
      max stats.Stats.max_live_snapshots (frontier_len + lineage)
  in

  let w0 = workers.(0) in

  (* Phase 1: worker 0 runs alone up to sys_guess_strategy.  Coordinator
     phases are not supervised: no fault ticks, no alloc hook yet. *)
  let to_scope () =
    match Libos.run w0.machine ~fuel:max_int with
    | Libos.Guess_strategy { strategy = id } ->
      let strat = resolve_strategy config id in
      ignore (harvest w0);
      Cpu.set w0.machine.Libos.cpu Reg.rax 0;
      let root = Snapshot.capture ~ids ~depth:0 w0.machine in
      stats.Stats.snapshots_created <- stats.Stats.snapshots_created + 1;
      Cpu.set w0.machine.Libos.cpu Reg.rax 1;
      root, Explorer.make_frontier strat
    | Libos.Exited { status } ->
      ignore (harvest w0);
      raise (Done (Explorer.Completed status))
    | Libos.Killed reason ->
      raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
    | Libos.Guess _ | Libos.Guess_fail | Libos.Guess_hint _ ->
      raise (Abort "guess before sys_guess_strategy")
  in

  let snap_of (ext : Ext.t) =
    match ext.Ext.payload with
    | Ext.Snap s -> s
    | Ext.Ref _ -> raise (Abort "managed extension in the parallel scheduler")
  in

  (* End of a worker's path segment: free its COW tail (unless a capture
     froze it) and give the origin's extension ref back.  The worker's map
     dangles until its next restore; it is never read in between, even if
     another worker recycles the freed buffers meanwhile. *)
  let retire w =
    if recycle_snaps then
      match w.snap with
      | None -> ()
      | Some p ->
        if As.epoch w.machine.Libos.aspace = w.epoch then
          ignore
            (As.discard_segment w.machine.Libos.aspace ~base:p.Snapshot.mem);
        Snapshot.release_ext ~phys p
  in

  let pop_into frontier w =
    match frontier.Frontier.pop () with
    | None -> ()
    | Some (ext : Ext.t) ->
      let snap = snap_of ext in
      if recycle_snaps && Snapshot.sole_extension snap then begin
        (* Last reference anywhere — running paths still hold their refs
           until [retire], so [ext_refs = 1] really means no other worker
           is on this snapshot.  Adopt its frames instead of re-COWing. *)
        Snapshot.restore_adopting w.machine snap;
        stats.Stats.adopting_restores <- stats.Stats.adopting_restores + 1
      end
      else Snapshot.restore w.machine snap;
      w.epoch <- As.epoch w.machine.Libos.aspace;
      w.marker <- Libos.stdout_chunks w.machine;
      Cpu.set w.machine.Libos.cpu Reg.rax ext.Ext.index;
      w.depth <- ext.Ext.meta.Frontier.depth;
      w.snap <- Some snap;
      w.origin <- Some ext;
      w.retries <- 0;
      w.busy <- true;
      stats.Stats.extensions_evaluated <- stats.Stats.extensions_evaluated + 1;
      stats.Stats.restores <- stats.Stats.restores + 1
  in

  (* Supervision: an exception out of a worker's quantum (injected crash,
     allocation failure) re-runs the path from its origin under a bounded
     retry budget, then quarantines it.  Safe because a path segment has no
     observable side effects before its terminal scheduling event. *)
  let crashed frontier ~root w e =
    let origin_adopted =
      recycle_snaps
      && (match w.snap with Some s -> Snapshot.adopted s | None -> false)
    in
    if (not origin_adopted) && w.retries < config.retry_budget - 1 then begin
      w.retries <- w.retries + 1;
      stats.Stats.requeues <- stats.Stats.requeues + 1;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~a:w.retries Obs.Names.sched_requeue;
      (* free the crashed attempt's COW tail before re-restoring *)
      if recycle_snaps then
        (match w.snap with
        | Some p when As.epoch w.machine.Libos.aspace = w.epoch ->
          ignore
            (As.discard_segment w.machine.Libos.aspace ~base:p.Snapshot.mem)
        | _ -> ());
      (match w.origin with
      | Some ext ->
        Snapshot.restore w.machine (snap_of ext);
        Cpu.set w.machine.Libos.cpu Reg.rax ext.Ext.index;
        w.depth <- ext.Ext.meta.Frontier.depth
      | None ->
        (* the scope-opening path restarts from the root, exploring *)
        Snapshot.restore w.machine root;
        Cpu.set w.machine.Libos.cpu Reg.rax 1;
        w.depth <- 0);
      w.epoch <- As.epoch w.machine.Libos.aspace;
      w.marker <- Libos.stdout_chunks w.machine
    end
    else begin
      if Obs.Trace.enabled () then Obs.Trace.instant Obs.Names.sched_quarantine;
      stats.Stats.quarantined <- stats.Stats.quarantined + 1;
      stats.Stats.kills <- stats.Stats.kills + 1;
      record (Explorer.Path_killed (quarantine_message e config.retry_budget))
        "" w.depth;
      retire w;
      w.busy <- false;
      w.retries <- 0;
      pop_into frontier w
    end
  in

  (* One scheduling event for a busy worker. *)
  let handle_stop frontier w stop =
    match stop with
    | Libos.Killed Libos.Fuel_exhausted ->
      (* quantum expired; stays busy and resumes next round *)
      ()
    | Libos.Guess { n } ->
      ignore (harvest w);
      if n <= 0 then begin
        stats.Stats.fails <- stats.Stats.fails + 1;
        record Explorer.Fail "" w.depth;
        retire w;
        w.busy <- false;
        pop_into frontier w
      end
      else begin
        let snap = Snapshot.capture ~ids ?parent:w.snap ~depth:w.depth w.machine in
        stats.Stats.guesses <- stats.Stats.guesses + 1;
        stats.Stats.snapshots_created <- stats.Stats.snapshots_created + 1;
        let meta = { Frontier.depth = w.depth + 1; hint = w.pending_hint } in
        w.pending_hint <- 0;
        frontier.Frontier.push_batch
          (List.init n (fun index ->
               meta, { Ext.payload = Ext.Snap snap; index; meta }));
        if recycle_snaps then Snapshot.retain ~n snap;
        stats.Stats.extensions_pushed <- stats.Stats.extensions_pushed + n;
        track_extents frontier;
        if stats.Stats.extensions_pushed > config.max_extensions then
          raise (Abort "extension budget exhausted");
        retire w;
        w.busy <- false;
        pop_into frontier w
      end
    | Libos.Guess_fail ->
      let output = harvest w in
      stats.Stats.fails <- stats.Stats.fails + 1;
      record Explorer.Fail output w.depth;
      retire w;
      w.busy <- false;
      pop_into frontier w
    | Libos.Guess_hint { dist } ->
      w.pending_hint <- dist;
      Cpu.set w.machine.Libos.cpu Reg.rax 0
    | Libos.Guess_strategy _ -> raise (Abort "nested sys_guess_strategy")
    | Libos.Exited { status } ->
      let output = harvest w in
      stats.Stats.exits <- stats.Stats.exits + 1;
      record (Explorer.Exit status) output w.depth;
      (match config.mode with
      | `First_exit -> raise (Done (Explorer.Stopped_first_exit status))
      | `Run_to_completion -> ());
      retire w;
      w.busy <- false;
      pop_into frontier w
    | Libos.Killed reason ->
      let output = harvest w in
      stats.Stats.kills <- stats.Stats.kills + 1;
      record (Explorer.Path_killed (Format.asprintf "%a" Libos.pp_reason reason))
        output w.depth;
      retire w;
      w.busy <- false;
      pop_into frontier w
  in

  let outcome =
    try
      let root, frontier = to_scope () in
      w0.busy <- true;
      w0.snap <- Some root;
      w0.origin <- None;
      (* one ref for the scope-opening path, balancing its [retire] *)
      if recycle_snaps then Snapshot.retain root;
      w0.epoch <- As.epoch w0.machine.Libos.aspace;
      (* Worker paths start here: arm the allocation fault for the shared
         allocator and tick the stop clock from now on. *)
      Mem.Phys_mem.set_alloc_fault phys (Inject.alloc_hook inj);
      (* Phase 2: round-robin quanta until the scope drains. *)
      let continue_ = ref true in
      while !continue_ do
        incr rounds;
        let any_busy = ref false in
        Array.iteri
          (fun idx w ->
            if not w.busy then pop_into frontier w;
            if w.busy then begin
              any_busy := true;
              busy_rounds.(idx) <- busy_rounds.(idx) + 1;
              let dropped = frontier.Frontier.evicted () in
              stats.Stats.evicted <- stats.Stats.evicted + List.length dropped;
              (* evicted extensions will never run: give their refs back
                 (any snapshot on a busy path's lineage stays pinned by a
                 live child or the path's own unreleased ref) *)
              if recycle_snaps then
                List.iter
                  (fun (e : Ext.t) ->
                    match e.Ext.payload with
                    | Ext.Snap s -> Snapshot.release_ext ~phys s
                    | Ext.Ref _ -> ())
                  dropped;
              match
                (try
                   let stop =
                     if Obs.Trace.enabled () then begin
                       let r0 = w.machine.Libos.cpu.Cpu.retired in
                       Obs.Trace.span_begin ~a:idx Obs.Names.worker_eval;
                       Fun.protect
                         ~finally:(fun () ->
                           Obs.Trace.span_end ~a:idx
                             ~b:(w.machine.Libos.cpu.Cpu.retired - r0)
                             Obs.Names.worker_eval)
                         (fun () ->
                           Libos.run w.machine
                             ~fuel:(Inject.jitter inj ~base:config.quantum))
                     end
                     else
                       Libos.run w.machine
                         ~fuel:(Inject.jitter inj ~base:config.quantum)
                   in
                   Inject.stop_tick inj;
                   `Stop stop
                 with e -> `Crash e)
              with
              | `Stop stop -> handle_stop frontier w stop
              | `Crash e -> crashed frontier ~root w e
            end)
          workers;
        if (not !any_busy) && frontier.Frontier.length () = 0 then continue_ := false
      done;
      (* Scope exhausted: resume worker 0 from the root with rax = 0.  The
         drain phase is a coordinator phase again — unsupervised. *)
      Mem.Phys_mem.set_alloc_fault phys None;
      Snapshot.restore w0.machine root;
      w0.marker <- Libos.stdout_chunks w0.machine;
      stats.Stats.restores <- stats.Stats.restores + 1;
      let rec drain () =
        match Libos.run w0.machine ~fuel:max_int with
        | Libos.Exited { status } ->
          ignore (harvest w0);
          Explorer.Completed status
        | Libos.Guess_strategy _ -> raise (Abort "second sys_guess_strategy scope")
        | Libos.Guess _ | Libos.Guess_fail -> raise (Abort "guess after scope")
        | Libos.Guess_hint _ ->
          Cpu.set w0.machine.Libos.cpu Reg.rax 0;
          drain ()
        | Libos.Killed reason ->
          raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
      in
      drain ()
    with
    | Done outcome -> outcome
    | Abort message -> Explorer.Aborted message
  in
  stats.Stats.instructions <-
    Array.fold_left (fun acc w -> acc + w.machine.Libos.cpu.Cpu.retired) 0 workers;
  Mem.Mem_metrics.add stats.Stats.mem
    (Mem.Mem_metrics.diff (Mem.Phys_mem.metrics phys) mem_before);
  { outcome;
    transcript = Buffer.contents transcript;
    terminals = List.rev !terminals;
    rounds = !rounds;
    busy_rounds;
    stats;
    domain_metrics = [||] }

(* ------------------------------------------------------------------ *)
(* Domains backend: one OCaml 5 domain per worker, each with a        *)
(* domain-private Phys_mem running the full frame-recycling           *)
(* lifecycle (free list, zero-fill elision, release/adopt).  Work     *)
(* items carry the producer's snapshot by reference through the       *)
(* sharded queue: the producer's own pops restore it directly         *)
(* (adopting its frames when it is the last reference), a thief       *)
(* rebuilds the state as its own root plus a private copy of the      *)
(* delta pages, and the reference travels back through the            *)
(* producer's mailbox so refcounts stay single-writer.                *)
(* ------------------------------------------------------------------ *)

type item = {
  it_snap : Snapshot.t;
      (* the producer's snapshot.  To the producing domain this is
         directly restorable; to every other domain it is an immutable
         description — saved registers, OS state, and a page map whose
         frames belong to retired generations — pinned against reuse by
         the extension ref the producer took at push time. *)
  it_root_map : As.snapshot;
      (* the producer's root page map: the base [it_snap]'s delta is
         computed against when a thief rebuilds the state *)
  it_index : int;
  it_meta : Frontier.meta;
  it_origin : int;  (* producing domain *)
  it_retries : int; (* crash-recovery attempts already spent on this item *)
}

(* The full root state, replicated once into every domain at startup. *)
type root_state = {
  r_pages : (int * string) list;
  r_shared : (int * string) list;  (* explicitly shared pages (sys_share) *)
  r_regs : Cpu.saved;
  r_os : Libos.os_state;
}

(* Cross-domain snapshot-reference returns.  Only the owner domain ever
   mutates its snapshots' refcounts, so a consumer of a foreign item posts
   the snapshot here when it retires the path and the owner releases it at
   its next retire.  The post happens strictly after the consumer stopped
   reading the snapshot's frames, so a release that frees them cannot race
   an import. *)
module Mailbox = struct
  type t = { lock : Mutex.t; mutable posted : Snapshot.t list }

  let create () = { lock = Mutex.create (); posted = [] }

  let post mb s =
    Mutex.lock mb.lock;
    mb.posted <- s :: mb.posted;
    Mutex.unlock mb.lock

  let drain mb =
    if mb.posted == [] then [] (* racy peek: a miss surfaces next drain *)
    else begin
      Mutex.lock mb.lock;
      let l = mb.posted in
      mb.posted <- [];
      Mutex.unlock mb.lock;
      l
    end
end

(* State shared by all worker domains.  The queue's shard mutexes provide
   the happens-before edges for everything an item references. *)
type shared = {
  queue : item Work_queue.t;
  outcome_cell : Explorer.outcome option Atomic.t;
  sh_ids : Snapshot.ids;
  sh_quantum : int;
  sh_mode : [ `Run_to_completion | `First_exit ];
  sh_max_extensions : int;
  sh_retry_budget : int;
  sh_recycle : bool;
      (* eager frame recycling on every domain; off under fault injection,
         exactly like the cooperative backend *)
  sh_mailboxes : Mailbox.t array;  (* indexed by producing domain *)
  sh_inj : Inject.t;  (* fire-state is atomic: shared by all domains *)
}

(* One frontier per queue shard: the factory runs once per domain. *)
let make_item_frontier :
    Explorer.strategy -> (unit -> item Frontier.t) option = function
  | `Dfs -> Some Frontier.dfs
  | `Bfs -> Some Frontier.bfs
  | `Astar -> Some Frontier.astar
  | `Sma capacity -> Some (fun () -> Frontier.sma ~capacity ())
  | `Wastar weight -> Some (fun () -> Frontier.wastar ~weight ())
  | `Beam width -> Some (fun () -> Frontier.beam ~width ())
  | `Dfs_bounded max_depth -> Some (fun () -> Frontier.dfs_bounded ~max_depth ())
  | `Random seed -> Some (fun () -> Frontier.random ~seed ())
  | `Custom _ -> None

let page_string aspace vpn =
  Bytes.to_string
    (As.read_bytes aspace ~addr:(Mem.Page.addr_of_vpn vpn) ~len:Mem.Page.size)

let serialize_root (m : Libos.t) =
  let vpns = As.mapped_vpns m.Libos.aspace in
  let shared, priv = List.partition (fun vpn -> As.is_shared m.Libos.aspace ~vpn) vpns in
  { r_pages = List.map (fun vpn -> vpn, page_string m.Libos.aspace vpn) priv;
    r_shared = List.map (fun vpn -> vpn, page_string m.Libos.aspace vpn) shared;
    r_regs = Cpu.save m.Libos.cpu;
    r_os = Libos.os_capture m }

(* Boot a fresh machine on a domain-private Phys_mem and rebuild the root
   state in it.  The caller then captures a local root snapshot, which
   retires the generation — so the rebuilt pages are immutable-until-COW
   and the decode cache works exactly as on domain 0. *)
let rehydrate_root image (root : root_state) =
  let phys = Mem.Phys_mem.create () in
  let m = Libos.boot phys image in
  let aspace = m.Libos.aspace in
  List.iter (fun vpn -> As.unmap aspace ~vpn) (As.mapped_vpns aspace);
  List.iter (fun (vpn, data) -> As.map_data aspace ~vpn data) root.r_pages;
  List.iter
    (fun (vpn, data) ->
      As.map_data aspace ~vpn data;
      As.map_shared aspace ~vpn)
    root.r_shared;
  Cpu.load m.Libos.cpu root.r_regs;
  Libos.os_restore m root.r_os;
  phys, m

(* The per-domain evaluation loop.  [entry] is [`Root] for the domain that
   natively carries the scope's root path (counted by the queue's
   [initial_paths]), [`Take] for domains that start by pulling work. *)
let eval_domain sh ~dom ~(machine : Libos.t) ~phys ~(d_root : Snapshot.t)
    ~(st : Stats.t) ~buf ~terminals ~items ~entry =
  let inj = sh.sh_inj in
  let aspace = machine.Libos.aspace in
  let recycle = sh.sh_recycle && Mem.Phys_mem.recycling phys in
  let marker = ref (Libos.stdout_chunks machine) in
  let depth = ref 0 in
  let pending_hint = ref 0 in
  let cur_snap : Snapshot.t option ref = ref None in
  let seg_epoch = ref (-1) in
  (* this domain's aspace epoch right after the last [prepare]; see
     [Addr_space.discard_segment] *)

  let harvest () =
    let cur = Libos.stdout_chunks machine in
    let rec collect acc l =
      if l == !marker then acc
      else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    marker := cur;
    let text = String.concat "" chunks in
    Buffer.add_string buf text;
    text
  in
  let record kind output =
    terminals := { Explorer.kind; output; depth = !depth } :: !terminals
  in
  let set_outcome o =
    ignore (Atomic.compare_and_set sh.outcome_cell None (Some o))
  in
  let abort msg =
    set_outcome (Explorer.Aborted msg);
    Work_queue.stop sh.queue
  in
  let track_live () =
    let frontier_len = Work_queue.length sh.queue in
    let lineage =
      match !cur_snap with
      | Some s -> List.length (Snapshot.lineage s)
      | None -> !depth + 1  (* foreign path: its lineage lives elsewhere *)
    in
    st.Stats.max_live_snapshots <-
      max st.Stats.max_live_snapshots (frontier_len + lineage)
  in

  (* Give an item's consumption ref back.  Own snapshots release directly;
     foreign ones travel through the producer's mailbox, so a snapshot's
     refcounts are only ever mutated by the domain that owns it. *)
  let return_ref (it : item) =
    if it.it_origin = dom then Snapshot.release_ext ~phys it.it_snap
    else Mailbox.post sh.sh_mailboxes.(it.it_origin) it.it_snap
  in
  let drain_mailbox () =
    List.iter (Snapshot.release_ext ~phys) (Mailbox.drain sh.sh_mailboxes.(dom))
  in
  (* Evicted extensions will never run: give their refs back.  (Any
     snapshot on a busy path's lineage stays pinned by a live child or the
     path's own unreleased ref.) *)
  let drop_evicted () =
    match Work_queue.drain_dropped sh.queue with
    | [] -> ()
    | dropped -> if recycle then List.iter return_ref dropped
  in

  (* Put the machine in the item's entry state and deliver the extension
     number.  Own items restore their snapshot directly — adopting its
     frames when this item is the last reference anywhere.  Foreign items
     restore the local root replica and graft a private copy of the
     producer's delta pages on top; the consumption ref (returned only at
     retire, so a crash-requeue keeps the pin) holds those frames immutable
     in retired generations for the whole read. *)
  let prepare (it : item) =
    cur_snap := None;
    seg_epoch := -1;
    if it.it_origin = dom then begin
      let snap = it.it_snap in
      if recycle && Snapshot.sole_extension snap then begin
        Snapshot.restore_adopting machine snap;
        st.Stats.adopting_restores <- st.Stats.adopting_restores + 1
      end
      else Snapshot.restore machine snap;
      cur_snap := Some snap
    end
    else begin
      st.Stats.steals <- st.Stats.steals + 1;
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~a:it.it_origin ~b:dom Obs.Names.queue_steal;
      Snapshot.restore machine d_root;
      ignore
        (As.import_delta aspace ~base:it.it_root_map
           ~target:it.it_snap.Snapshot.mem);
      Cpu.load machine.Libos.cpu it.it_snap.Snapshot.regs;
      Libos.os_restore machine it.it_snap.Snapshot.os
    end;
    seg_epoch := As.epoch aspace;
    marker := Libos.stdout_chunks machine;
    Cpu.set machine.Libos.cpu Reg.rax it.it_index;
    depth := it.it_meta.Frontier.depth
  in

  (* Free the path segment's COW tail — the frames dirtied since [prepare]
     — unless a capture froze it (the epoch moved).  For a foreign segment
     the base is the local root, so the imported delta pages are freed
     along with the tail. *)
  let discard_tail () =
    if recycle && !seg_epoch >= 0 && As.epoch aspace = !seg_epoch then begin
      let base =
        match !cur_snap with
        | Some s -> s.Snapshot.mem
        | None -> d_root.Snapshot.mem
      in
      ignore (As.discard_segment aspace ~base)
    end
  in

  (* End of a path segment: free its COW tail, give the consumption ref
     back, and release whatever refs foreign consumers have returned to
     this domain meanwhile. *)
  let retire (it : item) =
    if recycle then begin
      discard_tail ();
      return_ref it;
      drain_mailbox ()
    end;
    cur_snap := None;
    seg_epoch := -1
  in

  (* Run the current path to its terminal scheduling event.  Returns
     normally when the path is fully handled; the caller then retires it
     from the queue ([finish_path]). *)
  let rec path () =
    let stop =
      if Obs.Trace.enabled () then begin
        let r0 = machine.Libos.cpu.Cpu.retired in
        Obs.Trace.span_begin ~a:dom Obs.Names.worker_eval;
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.span_end ~a:dom
              ~b:(machine.Libos.cpu.Cpu.retired - r0)
              Obs.Names.worker_eval)
          (fun () ->
            Libos.run machine ~fuel:(Inject.jitter inj ~base:sh.sh_quantum))
      end
      else Libos.run machine ~fuel:(Inject.jitter inj ~base:sh.sh_quantum)
    in
    Inject.stop_tick inj;
    match stop with
    | Libos.Killed Libos.Fuel_exhausted ->
      (* quantum expired: the stop-flag check is what lets first-exit and
         aborts interrupt long-running sibling paths *)
      if Work_queue.stopped sh.queue then () else path ()
    | Libos.Guess { n } ->
      ignore (harvest ());
      if n <= 0 then begin
        st.Stats.fails <- st.Stats.fails + 1;
        record Explorer.Fail ""
      end
      else begin
        (* A foreign segment's capture parents to the local root replica —
           physically right (the machine's map derives from it) and it
           makes the foreign subtree recyclable on this domain. *)
        let parent = match !cur_snap with Some s -> s | None -> d_root in
        let snap =
          Snapshot.capture ~ids:sh.sh_ids ~parent ~depth:!depth machine
        in
        st.Stats.guesses <- st.Stats.guesses + 1;
        st.Stats.snapshots_created <- st.Stats.snapshots_created + 1;
        let meta = { Frontier.depth = !depth + 1; hint = !pending_hint } in
        pending_hint := 0;
        (* refs must exist before another domain can pop the items *)
        if recycle then Snapshot.retain ~n snap;
        Work_queue.push_batch sh.queue ~dom
          (List.init n (fun index ->
               ( meta,
                 { it_snap = snap;
                   it_root_map = d_root.Snapshot.mem;
                   it_index = index;
                   it_meta = meta;
                   it_origin = dom;
                   it_retries = 0 } )));
        drop_evicted ();
        st.Stats.extensions_pushed <- st.Stats.extensions_pushed + n;
        track_live ();
        if Work_queue.pushed sh.queue > sh.sh_max_extensions then
          abort "extension budget exhausted"
      end
    | Libos.Guess_fail ->
      let output = harvest () in
      st.Stats.fails <- st.Stats.fails + 1;
      record Explorer.Fail output
    | Libos.Guess_hint { dist } ->
      pending_hint := dist;
      Cpu.set machine.Libos.cpu Reg.rax 0;
      path ()
    | Libos.Guess_strategy _ -> abort "nested sys_guess_strategy"
    | Libos.Exited { status } -> (
      let output = harvest () in
      st.Stats.exits <- st.Stats.exits + 1;
      record (Explorer.Exit status) output;
      match sh.sh_mode with
      | `First_exit ->
        set_outcome (Explorer.Stopped_first_exit status);
        Work_queue.stop sh.queue
      | `Run_to_completion -> ())
    | Libos.Killed reason ->
      let output = harvest () in
      st.Stats.kills <- st.Stats.kills + 1;
      record (Explorer.Path_killed (Format.asprintf "%a" Libos.pp_reason reason))
        output
  in

  (* Supervision: a crash while preparing or evaluating [it] (injected, or
     a failed allocation) requeues the item with its retry count bumped —
     any domain can pick it up — until the budget is spent, then the item
     is quarantined as a killed path.  Push-before-finish ordering keeps
     the queue's termination count sound either way.  Safe because a path
     has no observable side effects (harvest, record, push) before its
     terminal scheduling event, and those all happen after the last
     crash point. *)
  let run_guarded (origin : item) =
    (match (try `Ok (prepare origin; path ()) with e -> `Crash e) with
    | `Ok () -> retire origin
    | `Crash e ->
      (* free the crashed attempt's COW tail before anything else *)
      discard_tail ();
      let origin_adopted =
        recycle && origin.it_origin = dom && Snapshot.adopted origin.it_snap
      in
      cur_snap := None;
      seg_epoch := -1;
      if (not origin_adopted) && origin.it_retries < sh.sh_retry_budget - 1
      then begin
        st.Stats.requeues <- st.Stats.requeues + 1;
        if Obs.Trace.enabled () then
          Obs.Trace.instant ~a:(origin.it_retries + 1) Obs.Names.sched_requeue;
        (* the requeued item keeps the consumption ref: whoever picks it
           up next still needs the snapshot's frames pinned *)
        Work_queue.push_batch sh.queue ~dom
          [ (origin.it_meta, { origin with it_retries = origin.it_retries + 1 }) ];
        drop_evicted ()
      end
      else begin
        if Obs.Trace.enabled () then
          Obs.Trace.instant Obs.Names.sched_quarantine;
        st.Stats.quarantined <- st.Stats.quarantined + 1;
        st.Stats.kills <- st.Stats.kills + 1;
        depth := origin.it_meta.Frontier.depth;
        record
          (Explorer.Path_killed (quarantine_message e sh.sh_retry_budget))
          "";
        if recycle then begin
          return_ref origin;
          drain_mailbox ()
        end
      end);
    Work_queue.finish_path sh.queue
  in

  let rec consume () =
    match Work_queue.take sh.queue ~dom with
    | None -> ()
    | Some it ->
      incr items;
      st.Stats.extensions_evaluated <- st.Stats.extensions_evaluated + 1;
      st.Stats.restores <- st.Stats.restores + 1;
      run_guarded it;
      drop_evicted ();
      consume ()
  in
  if Obs.Trace.enabled () then Obs.Trace.span_begin ~a:dom Obs.Names.worker;
  (try
    (match entry with
    | `Root ->
      (* The scope-opening path, encoded as an item so crash recovery can
         requeue it like any other: the root snapshot itself, entered with
         1 in rax (the exploring branch).  The retain balances its retire;
         the root is parentless, so it is never actually freed. *)
      if recycle then Snapshot.retain d_root;
      run_guarded
        { it_snap = d_root;
          it_root_map = d_root.Snapshot.mem;
          it_index = 1;
          it_meta = { Frontier.depth = 0; hint = 0 };
          it_origin = dom;
          it_retries = 0 }
    | `Take -> ());
    consume ();
    (* refs posted by foreign consumers after our last retire *)
    if recycle then drain_mailbox ()
  with e ->
    (* A crashed worker loop must not leave the others blocked in [take]. *)
    abort (Printf.sprintf "worker %d: %s" dom (Printexc.to_string e)));
  if Obs.Trace.enabled () then Obs.Trace.span_end ~a:dom Obs.Names.worker

let run_domains ~(config : config) (image : Isa.Asm.image) =
  let phys0 = Mem.Phys_mem.create () in
  let inj = arm_faults config in
  (* Eager snapshot release on every domain, as in the cooperative backend.
     Disabled under fault injection for the same reason. *)
  let recycle = config.faults = None && Mem.Phys_mem.recycling phys0 in
  (* Domain 0's own counters; the aggregate [stats] is assembled at the
     end so the per-domain registries stay separable. *)
  let st0 = Stats.create () in
  let mem_before = Mem.Mem_metrics.copy (Mem.Phys_mem.metrics phys0) in
  let m0 = Libos.boot phys0 image in
  let transcript = Buffer.create 256 in
  let terminals0 = ref [] in
  let busy_rounds = Array.make config.workers 0 in
  let marker0 = ref (Libos.stdout_chunks m0) in
  let harvest0 () =
    let cur = Libos.stdout_chunks m0 in
    let rec collect acc l =
      if l == !marker0 then acc
      else match l with [] -> acc | chunk :: rest -> collect (chunk :: acc) rest
    in
    let chunks = collect [] cur in
    marker0 := cur;
    Buffer.add_string transcript (String.concat "" chunks)
  in
  let worker_tail = ref [] in
  let worker_stats : (Stats.t * Obs.Metrics.t) list ref = ref [] in
  let queue_peak = ref 0 in
  let queue_evicted = ref 0 in
  let queue_steal_batches = ref 0 in
  let queue_stolen = ref 0 in
  let outcome =
    try
      (* Phase 1: domain 0 runs alone up to sys_guess_strategy. *)
      let strat =
        match Libos.run m0 ~fuel:max_int with
        | Libos.Guess_strategy { strategy = id } -> resolve_strategy config id
        | Libos.Exited { status } ->
          harvest0 ();
          raise (Done (Explorer.Completed status))
        | Libos.Killed reason ->
          raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
        | Libos.Guess _ | Libos.Guess_fail | Libos.Guess_hint _ ->
          raise (Abort "guess before sys_guess_strategy")
      in
      let mk_frontier =
        match make_item_frontier strat with
        | Some f -> f
        | None ->
          raise (Abort "`Custom strategies require the `Cooperative backend")
      in
      harvest0 ();
      (* The root must observe 0 when restored after exhaustion; serialize
         it with 0 in rax so every domain's replica agrees. *)
      Cpu.set m0.Libos.cpu Reg.rax 0;
      let ids = Snapshot.ids () in
      let root_state = serialize_root m0 in
      let d_root0 = Snapshot.capture ~ids ~depth:0 m0 in
      st0.Stats.snapshots_created <- st0.Stats.snapshots_created + 1;
      Cpu.set m0.Libos.cpu Reg.rax 1;
      let sh =
        { queue =
            Work_queue.create ~shards:config.workers ~initial_paths:1
              ~meta_of:(fun it -> it.it_meta)
              mk_frontier;
          outcome_cell = Atomic.make None;
          sh_ids = ids;
          sh_quantum = config.quantum;
          sh_mode = config.mode;
          sh_max_extensions = config.max_extensions;
          sh_retry_budget = config.retry_budget;
          sh_recycle = recycle;
          sh_mailboxes = Array.init config.workers (fun _ -> Mailbox.create ());
          sh_inj = inj }
      in
      (* Phase 2: spawn the other domains; each rebuilds the root on a
         private Phys_mem, then all pull from the shared queue.  The alloc
         fault arms per-domain only once the replica stands — rehydration
         failures would abort the run, not a path. *)
      let handles =
        List.init (config.workers - 1) (fun i ->
            let dom = i + 1 in
            Domain.spawn (fun () ->
                let st = Stats.create () in
                let reg = Obs.Metrics.create () in
                let buf = Buffer.create 256 in
                let terms = ref [] in
                let items = ref 0 in
                (try
                   let phys, machine = rehydrate_root image root_state in
                   let d_root = Snapshot.capture ~ids:sh.sh_ids ~depth:0 machine in
                   st.Stats.snapshots_created <- st.Stats.snapshots_created + 1;
                   Mem.Phys_mem.set_alloc_fault phys (Inject.alloc_hook inj);
                   eval_domain sh ~dom ~machine ~phys ~d_root ~st ~buf
                     ~terminals:terms ~items ~entry:`Take;
                   st.Stats.instructions <- machine.Libos.cpu.Cpu.retired;
                   Mem.Mem_metrics.add st.Stats.mem (Mem.Phys_mem.metrics phys)
                 with e ->
                   ignore
                     (Atomic.compare_and_set sh.outcome_cell None
                        (Some
                           (Explorer.Aborted
                              (Printf.sprintf "worker %d: %s" dom
                                 (Printexc.to_string e)))));
                   Work_queue.stop sh.queue);
                Stats.publish st reg;
                st, reg, Buffer.contents buf, List.rev !terms, !items))
      in
      let items0 = ref 0 in
      Mem.Phys_mem.set_alloc_fault phys0 (Inject.alloc_hook inj);
      eval_domain sh ~dom:0 ~machine:m0 ~phys:phys0 ~d_root:d_root0 ~st:st0
        ~buf:transcript ~terminals:terminals0 ~items:items0 ~entry:`Root;
      busy_rounds.(0) <- !items0;
      let results = List.map Domain.join handles in
      List.iteri
        (fun i (st, reg, tr, terms, items) ->
          busy_rounds.(i + 1) <- items;
          worker_stats := !worker_stats @ [ (st, reg) ];
          Buffer.add_string transcript tr;
          worker_tail := !worker_tail @ terms)
        results;
      queue_peak := Work_queue.max_length sh.queue;
      queue_evicted := Work_queue.evicted sh.queue;
      queue_steal_batches := Work_queue.steal_batches sh.queue;
      queue_stolen := Work_queue.stolen_items sh.queue;
      match Atomic.get sh.outcome_cell with
      | Some o -> o
      | None ->
        (* Scope exhausted: resume domain 0 from the root with rax = 0.
           The drain is a coordinator phase — unsupervised. *)
        Mem.Phys_mem.set_alloc_fault phys0 None;
        Snapshot.restore m0 d_root0;
        marker0 := Libos.stdout_chunks m0;
        st0.Stats.restores <- st0.Stats.restores + 1;
        let rec drain () =
          match Libos.run m0 ~fuel:max_int with
          | Libos.Exited { status } ->
            harvest0 ();
            Explorer.Completed status
          | Libos.Guess_strategy _ ->
            raise (Abort "second sys_guess_strategy scope")
          | Libos.Guess _ | Libos.Guess_fail -> raise (Abort "guess after scope")
          | Libos.Guess_hint _ ->
            Cpu.set m0.Libos.cpu Reg.rax 0;
            drain ()
          | Libos.Killed reason ->
            raise (Abort (Format.asprintf "%a" Libos.pp_reason reason))
        in
        drain ()
    with
    | Done outcome -> outcome
    | Abort message -> Explorer.Aborted message
  in
  st0.Stats.instructions <- st0.Stats.instructions + m0.Libos.cpu.Cpu.retired;
  Mem.Mem_metrics.add st0.Stats.mem
    (Mem.Mem_metrics.diff (Mem.Phys_mem.metrics phys0) mem_before);
  (* Domain 0's registry is published only now, after its memory metrics
     landed — otherwise its mem.* counters would all read zero. *)
  let reg0 = Obs.Metrics.create () in
  Stats.publish st0 reg0;
  Obs.Metrics.incr reg0 ~by:!queue_steal_batches "queue.steal_batches";
  Obs.Metrics.incr reg0 ~by:!queue_stolen "queue.stolen_items";
  let stats = Stats.create () in
  Stats.merge stats st0;
  List.iter (fun (st, _) -> Stats.merge stats st) !worker_stats;
  stats.Stats.max_frontier <- max stats.Stats.max_frontier !queue_peak;
  stats.Stats.evicted <- stats.Stats.evicted + !queue_evicted;
  { outcome;
    transcript = Buffer.contents transcript;
    terminals = List.rev !terminals0 @ !worker_tail;
    rounds = 0;
    busy_rounds;
    stats;
    domain_metrics = Array.of_list (reg0 :: List.map snd !worker_stats) }

let run ?(config = default_config) (image : Isa.Asm.image) =
  if config.workers < 1 then invalid_arg "Parallel.run: need at least one worker";
  match config.backend with
  | `Cooperative -> run_cooperative ~config image
  | `Domains -> run_domains ~config image
