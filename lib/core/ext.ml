type payload =
  | Snap of Snapshot.t
  | Ref of Reclaim.handle

type t = {
  payload : payload;
  index : int;
  meta : Search.Frontier.meta;
}
