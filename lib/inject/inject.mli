(** Deterministic fault injection: seeded plans of faults threaded through
    {!Mem.Phys_mem} (allocation failures) and [Core.Parallel] / the
    explorer (worker crashes, fuel jitter).

    A plan is pure data; {!arm} turns it into a one-use trigger set whose
    fire-state is atomic, so one armed plan can be consulted from every
    worker domain of a run at once.  All faults are {e recoverable} by
    construction — an allocation failure fires once per allocator, a
    worker crash fires once per trigger — so a supervised system must
    complete the run with the same terminal multiset as a fault-free one;
    that equivalence is what the fuzz oracle's fault mode asserts. *)

type fault =
  | Alloc_fail of int
      (** the allocation of frame ordinal [k] fails (once per allocator) *)
  | Worker_crash of int
      (** the [k]-th worker-path scheduler stop raises {!Crash} (once) *)
  | Fuel_jitter of int
      (** deterministically perturb every scheduling quantum (seed) *)

type plan = { seed : int; faults : fault list }

exception Crash of string
(** The simulated worker death raised by {!stop_tick}. *)

type t
(** An armed plan. *)

val arm : plan -> t
val none : t
(** An inert armed plan: no faults, zero overhead beyond a list check. *)

val plan : t -> plan
val is_none : t -> bool

val alloc_hook : t -> (int -> bool) option
(** A fresh single-shot hook for one {!Mem.Phys_mem.set_alloc_fault}:
    frame ordinals are per-allocator, so each allocator gets its own
    consumption state. [None] when the plan injects no allocation
    faults. *)

val stop_tick : t -> unit
(** Advance the global stop clock; raises {!Crash} on a triggering stop.
    Only worker-path stops call this — coordinator phases (reaching the
    strategy scope, draining after it) are not supervised. *)

val jitter : t -> base:int -> int
(** The scheduling quantum to use for the next stop: [base] when the plan
    has no jitter fault, otherwise a deterministic value in
    [[base/2, 3*base/2]] (always ≥ 1). *)

val generate : seed:int -> plan
(** A seeded random plan with at least one hard fault (allocation failure
    or worker crash) plus fuel jitter. *)

val fault_to_string : fault -> string
val render : plan -> string
