type fault =
  | Alloc_fail of int
  | Worker_crash of int
  | Fuel_jitter of int

type plan = { seed : int; faults : fault list }

exception Crash of string

let fault_to_string = function
  | Alloc_fail k -> Printf.sprintf "alloc-fail@frame:%d" k
  | Worker_crash k -> Printf.sprintf "worker-crash@stop:%d" k
  | Fuel_jitter seed -> Printf.sprintf "fuel-jitter:%d" seed

let render { seed; faults } =
  Printf.sprintf "plan seed=%d [%s]" seed
    (String.concat "; " (List.map fault_to_string faults))

(* An armed plan: the plan's triggers plus the mutable fire-state.  All
   counters are atomic because the domains backend consults one armed plan
   from every worker domain at once. *)
type t = {
  plan : plan;
  stop_clock : int Atomic.t;     (* worker-path scheduler stops, globally *)
  crash_stops : (int * bool Atomic.t) list;  (* k, already fired? *)
  alloc_ks : int list;
  jitter_seed : int option;
  jitter_clock : int Atomic.t;
}

let arm plan =
  { plan;
    stop_clock = Atomic.make 0;
    crash_stops =
      List.filter_map
        (function Worker_crash k -> Some (k, Atomic.make false) | _ -> None)
        plan.faults;
    alloc_ks =
      List.filter_map
        (function Alloc_fail k -> Some k | _ -> None)
        plan.faults;
    jitter_seed =
      List.find_map
        (function Fuel_jitter s -> Some s | _ -> None)
        plan.faults;
    jitter_clock = Atomic.make 0 }

let none = arm { seed = 0; faults = [] }

let plan t = t.plan
let is_none t = t.plan.faults = []

(* Each physical memory gets its own hook instance: frame ordinals are
   per-allocator (the domains backend runs one per domain), so the
   single-shot consumption must be too. *)
let alloc_hook t =
  if t.alloc_ks = [] then None
  else begin
    let pending = ref t.alloc_ks in
    Some
      (fun ordinal ->
        if List.mem ordinal !pending then begin
          pending := List.filter (fun k -> k <> ordinal) !pending;
          true
        end
        else false)
  end

(* Called once per worker-path scheduler stop (coordinator phases don't
   count).  Raises {!Crash} on the k-th stop, once per trigger. *)
let stop_tick t =
  if t.crash_stops <> [] then begin
    let n = 1 + Atomic.fetch_and_add t.stop_clock 1 in
    List.iter
      (fun (k, fired) ->
        if n = k && Atomic.compare_and_set fired false true then
          raise (Crash (Printf.sprintf "injected worker crash at stop %d" k)))
      t.crash_stops
  end

(* SplitMix64-style scramble of (seed, tick), folded to a small offset. *)
let jitter t ~base =
  match t.jitter_seed with
  | None -> base
  | Some seed ->
    let n = Atomic.fetch_and_add t.jitter_clock 1 in
    let z = ((seed * 0x1E3779B97F4A7C15) + n) land max_int in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
    let span = max 1 (base / 2) in
    max 1 (base - (span / 2) + (z mod span))

let generate ~seed =
  let rng = Stdx.Prng.create ~seed in
  let faults = ref [] in
  (* Always jitter fuel: it is semantics-neutral by design, so every plan
     doubles as a scheduling-robustness probe. *)
  faults := Fuel_jitter (Stdx.Prng.next rng land 0xFFFF) :: !faults;
  let with_alloc = Stdx.Prng.bool rng in
  if with_alloc then
    faults := Alloc_fail (20 + Stdx.Prng.int rng 400) :: !faults;
  (* Always at least one hard fault per plan. *)
  if (not with_alloc) || Stdx.Prng.bool rng then
    faults := Worker_crash (1 + Stdx.Prng.int rng 40) :: !faults;
  { seed; faults = List.rev !faults }
