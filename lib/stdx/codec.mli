(** A self-contained block codec for page-sized payloads.

    The tiered snapshot store ([Core.Reclaim]) retains evicted snapshot
    payloads as compressed dirty-page deltas; this is the codec those
    deltas go through.  It is a greedy LZ77 over a 4 KiB window — a good
    fit for guest pages, which are dominated by zero runs and small
    repeated records — with a stored-block fallback so incompressible
    input costs two bytes of header, never an expansion blow-up.

    The format is self-describing (method byte + original length), so
    [decompress] needs no out-of-band metadata and validates everything
    it reads: corrupt input raises instead of producing garbage. *)

val compress : string -> string
(** Never larger than [String.length s + 6] (stored-block worst case:
    method byte + length varint + verbatim payload). *)

val decompress : string -> string
(** Inverse of {!compress}: [decompress (compress s) = s] for every [s].
    @raise Invalid_argument on input not produced by {!compress}
    (truncated stream, bad method byte, out-of-window match, length
    mismatch). *)

val compressed_len : string -> int
(** [String.length (compress s)] without materialising the output — for
    accounting decisions (spill thresholds) only.  Currently implemented
    as compress-and-measure; kept separate so a smarter implementation
    can drop in. *)
