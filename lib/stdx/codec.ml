(* LZ77 with a 4 KiB window and a stored-block fallback.

   Output layout:
     byte 0          method: 0 = stored, 1 = lz
     varint          original length (LEB128)
     payload         stored: the input verbatim
                     lz: groups of 8 items, each group led by a control
                     byte (LSB first); bit 0 → one literal byte follows,
                     bit 1 → a 2-byte match token:
                       byte A = offset land 0xff
                       byte B = (offset lsr 8) lsl 4 lor (len - min_match)
                     offset in 1..4095 back from the write cursor, len in
                     3..18.  Overlapping matches are legal (offset < len),
                     which is how zero runs compress: one literal 0 then
                     offset-1 matches.

   The compressor is greedy with a single-candidate hash table over
   3-byte sequences; snapshot pages are dominated by zero runs and short
   repeated records, so one candidate already lands most matches.  When
   the lz payload would not beat the input, the stored method wins — the
   codec never expands input by more than the 6-byte header bound
   documented in the mli. *)

let min_match = 3
let max_match = 18
let max_offset = 4095
let hash_bits = 12
let hash_size = 1 lsl hash_bits

let corrupt () = invalid_arg "Stdx.Codec.decompress: corrupt input"

let put_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

(* Returns (value, next position); raises on truncation/overflow. *)
let get_varint s pos =
  let len = String.length s in
  let v = ref 0 and shift = ref 0 and pos = ref pos and fin = ref false in
  while not !fin do
    if !pos >= len || !shift > 56 then corrupt ();
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  (!v, !pos)

let hash3 s i =
  let a = Char.code (String.unsafe_get s i)
  and b = Char.code (String.unsafe_get s (i + 1))
  and c = Char.code (String.unsafe_get s (i + 2)) in
  ((a lsl 10) lxor (b lsl 5) lxor c) * 0x9e5f land (hash_size - 1)

let lz_payload s =
  let n = String.length s in
  let buf = Buffer.create (n / 2) in
  (* head.(h) = most recent position whose 3-byte hash is h, or -1 *)
  let head = Array.make hash_size (-1) in
  let ctrl = ref 0 and ctrl_bits = ref 0 in
  let group = Buffer.create 17 in
  let flush_group () =
    if !ctrl_bits > 0 then begin
      Buffer.add_char buf (Char.chr !ctrl);
      Buffer.add_buffer buf group;
      Buffer.clear group;
      ctrl := 0;
      ctrl_bits := 0
    end
  in
  let emit_item bit add =
    if bit then ctrl := !ctrl lor (1 lsl !ctrl_bits);
    incr ctrl_bits;
    add group;
    if !ctrl_bits = 8 then flush_group ()
  in
  let i = ref 0 in
  while !i < n do
    let i0 = !i in
    let matched = ref 0 and moffset = ref 0 in
    if i0 + min_match <= n then begin
      let h = hash3 s i0 in
      let cand = head.(h) in
      head.(h) <- i0;
      if cand >= 0 && i0 - cand <= max_offset then begin
        let limit = min max_match (n - i0) in
        let l = ref 0 in
        while
          !l < limit
          && String.unsafe_get s (cand + !l) = String.unsafe_get s (i0 + !l)
        do
          incr l
        done;
        if !l >= min_match then begin
          matched := !l;
          moffset := i0 - cand
        end
      end
    end;
    if !matched > 0 then begin
      let len = !matched and off = !moffset in
      emit_item true (fun g ->
          Buffer.add_char g (Char.chr (off land 0xff));
          Buffer.add_char g
            (Char.chr (((off lsr 8) lsl 4) lor (len - min_match))));
      (* Index the skipped positions too (cheaply: just their heads) so
         later matches can land inside this run. *)
      let stop = min (i0 + len) (n - min_match) in
      let j = ref (i0 + 1) in
      while !j < stop do
        head.(hash3 s !j) <- !j;
        incr j
      done;
      i := i0 + len
    end
    else begin
      emit_item false (fun g -> Buffer.add_char g s.[i0]);
      incr i
    end
  done;
  flush_group ();
  Buffer.contents buf

let compress s =
  let n = String.length s in
  let header m =
    let b = Buffer.create (n + 6) in
    Buffer.add_char b (Char.chr m);
    put_varint b n;
    b
  in
  if n < min_match then begin
    let b = header 0 in
    Buffer.add_string b s;
    Buffer.contents b
  end
  else
    let lz = lz_payload s in
    if String.length lz < n then begin
      let b = header 1 in
      Buffer.add_string b lz;
      Buffer.contents b
    end
    else begin
      let b = header 0 in
      Buffer.add_string b s;
      Buffer.contents b
    end

let decompress s =
  let slen = String.length s in
  if slen = 0 then corrupt ();
  let meth = Char.code s.[0] in
  let n, pos = get_varint s 1 in
  match meth with
  | 0 ->
      if slen - pos <> n then corrupt ();
      String.sub s pos n
  | 1 ->
      let out = Bytes.create n in
      let op = ref 0 and ip = ref pos in
      while !op < n do
        if !ip >= slen then corrupt ();
        let ctrl = Char.code s.[!ip] in
        incr ip;
        let bit = ref 0 in
        while !bit < 8 && !op < n do
          if ctrl land (1 lsl !bit) = 0 then begin
            if !ip >= slen then corrupt ();
            Bytes.unsafe_set out !op s.[!ip];
            incr ip;
            incr op
          end
          else begin
            if !ip + 1 >= slen then corrupt ();
            let a = Char.code s.[!ip] and b = Char.code s.[!ip + 1] in
            ip := !ip + 2;
            let off = a lor ((b lsr 4) lsl 8) in
            let len = (b land 0xf) + min_match in
            if off = 0 || off > !op || !op + len > n then corrupt ();
            (* byte-at-a-time: overlapping matches must self-extend *)
            for k = 0 to len - 1 do
              Bytes.unsafe_set out (!op + k)
                (Bytes.unsafe_get out (!op + k - off))
            done;
            op := !op + len
          end;
          incr bit
        done
      done;
      if !ip <> slen then corrupt ();
      Bytes.unsafe_to_string out
  | _ -> corrupt ()

let compressed_len s = String.length (compress s)
